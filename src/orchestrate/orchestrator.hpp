/**
 * @file
 * Crash-resilient multi-process campaign orchestration.
 *
 * ROADMAP item 2's distribution story: a fault-injection campaign is
 * drained by a fleet of worker *processes* over a shared campaign
 * directory, and the merged report comes out byte-identical to a
 * single-process `--jobs=1` run no matter how many workers ran, how
 * the trials were chunked, or which workers crashed or hung along the
 * way. The design splits into three small protocols, all built on the
 * repo's existing atomic-publish machinery (base/io.hpp):
 *
 *   Work claims — the campaign's fault list (drawn deterministically
 *   from the manifest's seed, identical in every process) is cut into
 *   fixed-size chunks. A worker claims chunk C by publishing
 *   `leases/chunk-C.lease` with publish_file_exclusive: link(2)
 *   arbitration means exactly one claimer wins and losers just move to
 *   the next chunk. Completed chunks are published atomically as
 *   `chunks/chunk-C.json` (schema cuttlesim-orch-chunk-v1), so a chunk
 *   result either exists completely or not at all — re-running a chunk
 *   is idempotent by determinism, which makes every crash/reclaim race
 *   benign: any two publishes of the same chunk carry the same bytes.
 *
 *   Supervision — the orchestrator fork/execs N `cuttlec
 *   --fault-worker` processes (each its own process group, the same
 *   containment codegen's compile watchdog uses) and watches two
 *   signals: child exits (reaped non-blockingly; abnormal exits
 *   respawn the slot up to --max-retries) and lease heartbeats
 *   (workers rewrite `leases/chunk-C.hb` while they work; a lease
 *   whose owner died or whose heartbeat went stale past
 *   --worker-timeout is reclaimed — the owner's process group is
 *   killed and the chunk goes back to the pool after a capped
 *   exponential backoff). A chunk that exhausts its retry budget is
 *   marked failed (`chunks/chunk-C.failed`) and the campaign degrades
 *   gracefully instead of aborting: the final report carries an
 *   `incomplete` block naming the missing work.
 *
 *   Merge — chunk records reuse the exact serialization functions of
 *   the fault library (fault::injection_to_json and friends), fold in
 *   chunk order through the same commutative coverage/metrics merges
 *   run_campaign uses, and the final fault report is assembled by the
 *   same fault::campaign_report_json that cuttlec's single-process
 *   path calls — byte-identity by shared code, not by convention.
 *
 * `--chaos=P` arms a self-test mode in the workers: with probability P
 * per claim a worker deliberately crashes mid-chunk, hangs (stops
 * heartbeating), or crashes after publishing but before releasing its
 * lease. CI drains a chaos campaign and diffs the merged report
 * against the single-process bytes (ctest label `orch`).
 *
 * Everything lives in the campaign directory, so a killed
 * *orchestrator* is recoverable too: a rerun with the same flags keeps
 * completed chunks, clears orphan leases and failed markers, and
 * finishes the remainder.
 *
 * The fleet is observable while it runs and after it dies
 * (src/obs/telemetry.hpp): every process appends spans, metrics
 * snapshots, and lifecycle events to `telemetry/<proc>.jsonl`; worker
 * stderr lands in `workers/worker-K.log` (rotated to `.log.N` per
 * respawn); the supervisor publishes an atomic `status.json`
 * (cuttlesim-status-v1, read live by `cuttlec --fault-status=`) and,
 * after the drain, merges the telemetry into `fleet.prof.json`,
 * `fleet.trace.json`, and `events.json`.
 */
#pragma once

#include <string>
#include <vector>

#include <sys/types.h>

#include "fault/fault.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace koika::orchestrate {

/** Exit code for "campaign drained but some chunks exhausted their
 *  retry budget": the report exists and carries an `incomplete`
 *  block. Distinct from success (0), failure (1), usage (2), and
 *  interruption (koika::kExitInterrupted). */
constexpr int kExitIncomplete = 4;

struct OrchestratorConfig
{
    /** Campaign directory (created if missing): manifest, chunk
     *  results, leases, worker logs, final report. */
    std::string dir;
    /** Registry design name (workers rebuild it from the manifest). */
    std::string design;
    /** In-process engine name: T0..T5 or "ref". */
    std::string engine;
    /** What to inject: seed/count/cycles/stuck_at/max_stuck_cycles and
     *  collect_coverage are honored; jobs is the per-worker thread
     *  count; checkpoint/progress fields are ignored (the chunk files
     *  ARE the progress format here). */
    fault::CampaignConfig campaign;
    /** Worker processes to supervise. */
    int workers = 2;
    /** Injections per chunk (the claim granularity). */
    int chunk_size = 16;
    /** Reclaim a lease once its heartbeat is older than this. */
    double worker_timeout_seconds = 10;
    /** Per-chunk reclaim budget and per-slot respawn budget; past it
     *  the chunk is marked failed / the slot stays down. */
    int max_retries = 3;
    /** Self-test: probability per claim that the worker deliberately
     *  crashes or hangs mid-chunk (0 = off). */
    double chaos = 0;
    /** Worker executable; empty = this binary (/proc/self/exe). */
    std::string worker_binary;
};

struct OrchestratorReport
{
    /** The merged campaign: injections in fault-list order (failed
     *  chunks leave their records default-initialized — see
     *  missing_injections), coverage merged in chunk order, outcome
     *  tallies over present records only. */
    fault::CampaignReport campaign;

    uint64_t chunks_total = 0;
    uint64_t chunks_completed = 0;
    uint64_t chunks_failed = 0;

    /** Chunk ids that exhausted their retry budget, ascending. */
    std::vector<int> failed_chunks;
    /** Global injection indices with no record, ascending. */
    std::vector<uint64_t> missing_injections;

    /** Echo of the supervision knobs (workers, chunk_size,
     *  worker_timeout_seconds, max_retries, chaos) — the report's
     *  `orchestration` block. */
    obs::Json orchestration_config = obs::Json::object();

    /** Orchestration counters (orch/chunks_claimed, orch/...retried,
     *  ...reclaimed, ...failed, orch/worker_restarts,
     *  orch/lease_conflicts) merged with the campaign's own fault
     *  metrics. */
    obs::MetricsRegistry metrics;

    /** Supervisor wall clock, spawn to merge. */
    double wall_seconds = 0;

    /** Campaign directory the drain ran over (for diagnostics: worker
     *  logs and telemetry artifacts live under it). */
    std::string dir;

    /** A shutdown signal stopped the drain early; nothing was merged
     *  and no orchestrator report file was written. Rerun with the
     *  same flags to resume from the completed chunks. */
    bool interrupted = false;

    bool complete() const { return chunks_failed == 0 && !interrupted; }

    /**
     * The cuttlesim-orch-v1 report (EXPERIMENTS.md has the
     * field-by-field schema). The embedded `report` block is exactly
     * the artifact fault::campaign_report_json produces, filtered to
     * present records when incomplete — for a fully drained campaign
     * it is byte-identical to the single-process --fault-report.
     */
    obs::Json to_json() const;

    /** Human summary: chunk/worker/retry tallies + campaign table. */
    std::string to_text() const;
};

/**
 * Drain a campaign: write the manifest (or validate an existing one —
 * resuming with different flags is fatal), clear orphan leases and
 * failed markers, spawn and supervise the worker fleet, and merge the
 * chunk results. Writes `<dir>/orchestrate.json` unless interrupted.
 */
OrchestratorReport run_orchestrator(const OrchestratorConfig& config);

/**
 * Worker-process entry (`cuttlec --fault-worker=DIR --worker-id=K`):
 * load the manifest, regenerate the fault list, then claim-run-publish
 * chunks until every chunk is resolved. Returns a process exit code
 * (0 = all chunks resolved, koika::kExitInterrupted on signal).
 */
int run_worker(const std::string& dir, int worker_id);

// -- Lease primitives (exposed for the race/reclaim unit tests) -------------

struct LeaseInfo
{
    int chunk = -1;
    int worker = -1;
    pid_t pid = -1;
};

std::string manifest_path(const std::string& dir);
/** `<dir>/workers/worker-K.log`: the slot's current stderr capture
 *  (earlier incarnations are rotated to `.log.N`). */
std::string worker_log_path(const std::string& dir, int slot);
/** `<dir>/status.json`: the supervisor's live cuttlesim-status-v1. */
std::string status_path(const std::string& dir);
std::string chunk_result_path(const std::string& dir, int chunk);
std::string chunk_failed_path(const std::string& dir, int chunk);
std::string lease_path(const std::string& dir, int chunk);
std::string heartbeat_path(const std::string& dir, int chunk);

/**
 * Claim chunk `chunk` for `worker`: exclusive-publish the lease file.
 * Exactly one concurrent claimer returns true; everyone else gets
 * false (and moves on — losing a claim is not an error).
 */
bool try_claim_lease(const std::string& dir, int chunk, int worker);

/** Parse a lease file. False when missing or malformed. */
bool read_lease(const std::string& path, LeaseInfo* info);

/** Drop the lease and its heartbeat (idempotent). */
void release_lease(const std::string& dir, int chunk);

/** Refresh the lease's heartbeat (rewrites the hb file). */
void touch_heartbeat(const std::string& dir, int chunk);

/**
 * Seconds since chunk's last heartbeat (falling back to the lease
 * file's own mtime before the first heartbeat lands); -1 when neither
 * file exists. The supervisor reclaims once this exceeds
 * worker_timeout_seconds — or immediately when the owning pid is
 * known-dead.
 */
double heartbeat_age_seconds(const std::string& dir, int chunk);

} // namespace koika::orchestrate
