/**
 * @file
 * Orchestrator implementation. The header's comment covers the three
 * protocols (claims, supervision, merge); this file's invariants:
 *
 *   - Every cross-process artifact (manifest, lease, chunk result,
 *     failed marker) is published atomically, so readers never see a
 *     torn file: write_file_atomic for plain publishes,
 *     publish_file_exclusive for the one path that needs arbitration
 *     (the lease claim).
 *
 *   - Chunk results are idempotent: the fault list is a pure function
 *     of the manifest, so two workers that both end up running chunk C
 *     (an ABA reclaim race: slow-but-alive owner publishes after its
 *     lease was reclaimed and re-claimed) publish byte-identical
 *     files, and publish order cannot change the merged report.
 *
 *   - The supervisor never blocks on a child: reaps are WNOHANG,
 *     liveness is judged from heartbeat file mtimes, and hung workers
 *     are killed by process group so compiler/driver grandchildren die
 *     with them.
 *
 *   - Reclaim backoff holds the *stale lease file in place* until the
 *     hold expires; workers skip leased chunks, so the backoff needs no
 *     cooperation from them. The lease is unlinked when the hold ends,
 *     which is the moment the chunk becomes claimable again.
 */
#include "orchestrate/orchestrator.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <random>
#include <set>
#include <sstream>
#include <thread>

#include <ctime>

#include <errno.h>
#include <signal.h>
#include <sys/stat.h>
#include <time.h>
#include <unistd.h>

#include "base/error.hpp"
#include "base/io.hpp"
#include "base/signal.hpp"
#include "codegen/compile.hpp"
#include "designs/designs.hpp"
#include "designs/targets.hpp"
#include "harness/parallel.hpp"
#include "obs/coverage.hpp"
#include "obs/prof.hpp"
#include "obs/telemetry.hpp"

namespace koika::orchestrate {

namespace {

constexpr const char* kReportSchema = "cuttlesim-orch-v1";
constexpr const char* kManifestSchema = "cuttlesim-orch-manifest-v1";
constexpr const char* kChunkSchema = "cuttlesim-orch-chunk-v1";
constexpr const char* kLeaseSchema = "cuttlesim-orch-lease-v1";
constexpr const char* kFailedSchema = "cuttlesim-orch-failed-v1";

double
monotonic_seconds()
{
    auto now = std::chrono::steady_clock::now().time_since_epoch();
    return std::chrono::duration<double>(now).count();
}

double
realtime_seconds()
{
    struct timespec ts;
    ::clock_gettime(CLOCK_REALTIME, &ts);
    return (double)ts.tv_sec + (double)ts.tv_nsec * 1e-9;
}

void
sleep_ms(int ms)
{
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

bool
file_exists(const std::string& path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

/** File mtime with nanosecond resolution; -1 when the file is gone. */
double
file_mtime(const std::string& path)
{
    struct stat st;
    if (::stat(path.c_str(), &st) != 0)
        return -1;
    return (double)st.st_mtim.tv_sec + (double)st.st_mtim.tv_nsec * 1e-9;
}

void
mkdir_p(const std::string& path)
{
    std::string prefix;
    for (size_t i = 0; i <= path.size(); ++i) {
        if (i < path.size() && path[i] != '/') {
            prefix.push_back(path[i]);
            continue;
        }
        if (!prefix.empty() && ::mkdir(prefix.c_str(), 0755) != 0 &&
            errno != EEXIST)
            fatal("cannot create directory '%s': %s", prefix.c_str(),
                  std::strerror(errno));
        if (i < path.size())
            prefix.push_back('/');
    }
}

std::string
chunk_tag(int chunk)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%06d", chunk);
    return buf;
}

obs::Json
read_json_file(const std::string& path)
{
    return obs::Json::parse(read_file(path));
}

const obs::Json&
jget(const obs::Json& j, const char* key, const std::string& what)
{
    const obs::Json* p = j.find(key);
    if (p == nullptr)
        fatal("%s: missing field '%s'", what.c_str(), key);
    return *p;
}

void
check_schema(const obs::Json& j, const char* schema,
             const std::string& what)
{
    if (jget(j, "schema", what).as_string() != schema)
        fatal("%s: expected schema %s, got %s", what.c_str(), schema,
              jget(j, "schema", what).as_string().c_str());
}

int
num_chunks_for(int count, int chunk_size)
{
    return (count + chunk_size - 1) / chunk_size;
}

// -- Manifest ----------------------------------------------------------------

obs::Json
manifest_json(const OrchestratorConfig& config, int num_chunks)
{
    obs::Json m = obs::Json::object();
    m["schema"] = kManifestSchema;
    m["design"] = config.design;
    m["engine"] = config.engine;
    m["config"] = fault::campaign_config_echo(config.campaign);
    m["collect_coverage"] = config.campaign.collect_coverage;
    m["chunk_size"] = (int64_t)config.chunk_size;
    m["num_chunks"] = (int64_t)num_chunks;
    m["worker_jobs"] = (int64_t)config.campaign.jobs;
    m["worker_batch"] = (int64_t)config.campaign.batch;
    m["worker_timeout_seconds"] = config.worker_timeout_seconds;
    m["chaos"] = config.chaos;
    return m;
}

/**
 * A resumed campaign directory must describe the same campaign: the
 * fields that determine the fault list and the chunk boundaries have
 * to match (supervision knobs — workers, timeout, retries, chaos — may
 * change between runs; the manifest is rewritten with the new values).
 */
void
check_manifest_identity(const obs::Json& have, const obs::Json& want,
                        const std::string& path)
{
    static const char* kIdentity[] = {"schema",   "design",
                                      "engine",   "config",
                                      "collect_coverage", "chunk_size"};
    for (const char* key : kIdentity) {
        std::string h = jget(have, key, path).dump();
        std::string w = jget(want, key, path).dump();
        if (h != w)
            fatal("campaign directory was started with different flags: "
                  "'%s' field '%s' is %s, current flags say %s (use a "
                  "fresh --fault-orchestrate directory, or rerun with "
                  "the original flags to resume)",
                  path.c_str(), key, h.c_str(), w.c_str());
    }
}

} // namespace

// -- Paths and lease primitives ----------------------------------------------

std::string
manifest_path(const std::string& dir)
{
    return dir + "/campaign.json";
}

std::string
worker_log_path(const std::string& dir, int slot)
{
    return dir + "/workers/worker-" + std::to_string(slot) + ".log";
}

std::string
status_path(const std::string& dir)
{
    return dir + "/status.json";
}

std::string
chunk_result_path(const std::string& dir, int chunk)
{
    return dir + "/chunks/chunk-" + chunk_tag(chunk) + ".json";
}

std::string
chunk_failed_path(const std::string& dir, int chunk)
{
    return dir + "/chunks/chunk-" + chunk_tag(chunk) + ".failed";
}

std::string
lease_path(const std::string& dir, int chunk)
{
    return dir + "/leases/chunk-" + chunk_tag(chunk) + ".lease";
}

std::string
heartbeat_path(const std::string& dir, int chunk)
{
    return dir + "/leases/chunk-" + chunk_tag(chunk) + ".hb";
}

bool
try_claim_lease(const std::string& dir, int chunk, int worker)
{
    obs::Json j = obs::Json::object();
    j["schema"] = kLeaseSchema;
    j["chunk"] = (int64_t)chunk;
    j["worker"] = (int64_t)worker;
    j["pid"] = (int64_t)::getpid();
    return publish_file_exclusive(lease_path(dir, chunk),
                                  j.dump(2) + "\n");
}

bool
read_lease(const std::string& path, LeaseInfo* info)
{
    try {
        obs::Json j = obs::Json::parse(read_file(path));
        const obs::Json* chunk = j.find("chunk");
        const obs::Json* worker = j.find("worker");
        const obs::Json* pid = j.find("pid");
        if (chunk == nullptr || worker == nullptr || pid == nullptr)
            return false;
        info->chunk = (int)chunk->as_int();
        info->worker = (int)worker->as_int();
        info->pid = (pid_t)pid->as_int();
        return true;
    } catch (const std::exception&) {
        return false; // vanished mid-read or malformed: caller decides
    }
}

void
release_lease(const std::string& dir, int chunk)
{
    std::remove(lease_path(dir, chunk).c_str());
    std::remove(heartbeat_path(dir, chunk).c_str());
}

void
touch_heartbeat(const std::string& dir, int chunk)
{
    // The content is irrelevant; the supervisor reads the mtime. The
    // atomic rewrite keeps the file present at all times.
    write_file_atomic(heartbeat_path(dir, chunk), "beat\n");
}

double
heartbeat_age_seconds(const std::string& dir, int chunk)
{
    double mt = file_mtime(heartbeat_path(dir, chunk));
    if (mt < 0)
        mt = file_mtime(lease_path(dir, chunk));
    if (mt < 0)
        return -1;
    return std::max(0.0, realtime_seconds() - mt);
}

// -- Worker ------------------------------------------------------------------

namespace {

struct WorkerContext
{
    std::string dir;
    int worker_id = -1;
    const Design* design = nullptr;
    fault::TargetFactory factory;
    fault::CampaignConfig campaign;
    std::vector<fault::FaultSpec> faults;
    int chunk_size = 0;
    int num_chunks = 0;
    double worker_timeout = 10;
    double chaos = 0;
    /** Lost claim races since this worker's last published chunk;
     *  echoed into the next chunk record for the merged counter. */
    uint64_t lease_conflicts = 0;
    /** This process's telemetry stream (owned by run_worker). */
    obs::TelemetryWriter* telemetry = nullptr;
    /** Worker-local counters published in telemetry snapshots. */
    obs::MetricsRegistry* wmetrics = nullptr;
};

enum class ChunkStatus { kDone, kInterrupted };

/** Chaos modes a worker can draw per claim (self-test only). */
enum ChaosMode {
    kChaosNone = 0,
    kChaosCrashMid,      // _exit(43) halfway through the chunk
    kChaosHang,          // stop heartbeating, stall, _exit(44)
    kChaosCrashAfterPublish, // publish the result, _exit(45), lease left
};

ChunkStatus
run_claimed_chunk(WorkerContext& ctx, int chunk, std::mt19937_64& chaos_rng)
{
    const std::string& dir = ctx.dir;
    int first = chunk * ctx.chunk_size;
    int count = std::min(ctx.chunk_size, (int)ctx.faults.size() - first);

    touch_heartbeat(dir, chunk);

    // Heartbeat thread: rewrite the hb file well inside the supervisor's
    // timeout so a healthy worker is never reclaimed, however long its
    // injections take.
    std::atomic<bool> hb_stop{false};
    double interval = std::clamp(ctx.worker_timeout / 4.0, 0.05, 1.0);
    std::thread hb_thread([&ctx, &hb_stop, &dir, chunk, interval] {
        (void)ctx;
        while (!hb_stop.load()) {
            sleep_ms((int)(interval * 1000));
            if (hb_stop.load())
                break;
            try {
                touch_heartbeat(dir, chunk);
            } catch (const std::exception&) {
                // Campaign dir yanked from under us; the supervisor (or
                // the absence of one) will sort the rest out.
            }
        }
    });
    auto stop_heartbeat = [&] {
        hb_stop.store(true);
        if (hb_thread.joinable())
            hb_thread.join();
    };

    int mode = kChaosNone;
    if (ctx.chaos > 0) {
        double u = (double)(chaos_rng() >> 11) / (double)(1ull << 53);
        if (u < ctx.chaos * 0.5)
            mode = kChaosCrashMid;
        else if (u < ctx.chaos * 0.75)
            mode = kChaosHang;
        else if (u < ctx.chaos)
            mode = kChaosCrashAfterPublish;
    }

    if (mode == kChaosHang) {
        // Simulate a wedged worker: the lease is held, the heartbeat
        // goes stale, and we stall until the supervisor's group-kill
        // takes us out (the deadline below is a backstop for
        // supervisor-less tests).
        stop_heartbeat();
        double deadline =
            monotonic_seconds() + std::min(ctx.worker_timeout * 50.0, 120.0);
        while (monotonic_seconds() < deadline)
            sleep_ms(100);
        _exit(44);
    }

    bool collect = ctx.campaign.collect_coverage;
    std::vector<fault::InjectionRecord> records((size_t)count);
    std::vector<obs::CoverageMap> coverage;
    if (collect)
        coverage.resize((size_t)count);

    // The injections themselves run through the exact dispatch
    // run_campaign uses (fault::run_injection_range); the chaos
    // mid-chunk crash rides in on the per-item hook so it still fires
    // when the crashing index falls inside a lockstep batch.
    auto chaos_crash = [&](uint64_t k0, uint64_t n) {
        if (mode == kChaosCrashMid && (uint64_t)(count / 2) >= k0 &&
            (uint64_t)(count / 2) < k0 + n)
            _exit(43);
    };
    obs::ProfScope chunk_span("orch/chunk");
    bool ok = fault::run_injection_range(
        *ctx.design, ctx.factory, ctx.faults, (size_t)first, (size_t)count,
        ctx.campaign.cycles, ctx.campaign.jobs, ctx.campaign.batch,
        records.data(), collect ? coverage.data() : nullptr, chaos_crash);
    chunk_span.close();

    if (!ok) {
        stop_heartbeat();
        release_lease(dir, chunk);
        return ChunkStatus::kInterrupted;
    }

    obs::Json cj = obs::Json::object();
    cj["schema"] = kChunkSchema;
    cj["chunk"] = (int64_t)chunk;
    cj["first"] = (int64_t)first;
    cj["count"] = (int64_t)count;
    cj["worker"] = (int64_t)ctx.worker_id;
    cj["lease_conflicts"] = ctx.lease_conflicts;
    obs::Json list = obs::Json::array();
    for (int k = 0; k < count; ++k)
        list.push_back(fault::injection_to_json((size_t)(first + k),
                                                records[(size_t)k]));
    cj["injections"] = std::move(list);
    if (collect) {
        // Same fold run_campaign does for this slice: zeroed per-design
        // base, per-injection maps merged in fault-list order. Merging
        // the chunk maps in chunk order at the supervisor is then
        // exactly the single-process merge, just reassociated.
        obs::CoverageMap merged = obs::CoverageMap::for_design(*ctx.design);
        for (int k = 0; k < count; ++k)
            merged.merge(coverage[(size_t)k]);
        cj["coverage"] = merged.to_json();
    }
    write_file_atomic(chunk_result_path(dir, chunk), cj.dump(2) + "\n");
    ctx.lease_conflicts = 0;

    // Telemetry flush straddles the chaos exit below on purpose: a
    // publish-then-crash worker still leaves its spans and counters in
    // the journal, which is exactly the autopsy story the fleet merge
    // exists for.
    if (ctx.telemetry != nullptr) {
        ctx.wmetrics->inc("worker/chunks_published");
        ctx.wmetrics->inc("worker/trials", (uint64_t)count);
        obs::Json args = obs::Json::object();
        args["chunk"] = (int64_t)chunk;
        args["count"] = (int64_t)count;
        ctx.telemetry->event("chunk/publish", std::move(args));
        ctx.telemetry->snapshot(*ctx.wmetrics);
    }

    if (mode == kChaosCrashAfterPublish)
        _exit(45); // result published, lease left behind

    stop_heartbeat();
    release_lease(dir, chunk);
    return ChunkStatus::kDone;
}

} // namespace

int
run_worker(const std::string& dir, int worker_id)
{
    install_shutdown_handlers();

    // Fleet telemetry: the worker's main thread is always named
    // "worker" — NOT worker-<id> — so the merged fleet report's lane
    // set is independent of worker count, respawns, and crash
    // schedule; every incarnation of every slot folds into one
    // logical lane.
    obs::Profiler& prof = obs::Profiler::instance();
    if (!prof.enabled())
        prof.enable();
    prof.set_thread_name("worker");

    std::string mpath = manifest_path(dir);
    obs::Json m = read_json_file(mpath);
    check_schema(m, kManifestSchema, mpath);

    WorkerContext ctx;
    ctx.dir = dir;
    ctx.worker_id = worker_id;

    obs::TelemetryWriter telemetry(dir,
                                   "worker-" + std::to_string(worker_id),
                                   codegen::compiler_identity_line());
    obs::MetricsRegistry wmetrics;
    ctx.telemetry = &telemetry;
    ctx.wmetrics = &wmetrics;
    {
        obs::Json args = obs::Json::object();
        args["worker"] = (int64_t)worker_id;
        args["pid"] = (int64_t)::getpid();
        telemetry.event("worker/start", std::move(args));
    }
    auto finish = [&](int code, const char* what) {
        obs::Json args = obs::Json::object();
        args["exit"] = (int64_t)code;
        telemetry.event(what, std::move(args));
        telemetry.snapshot(wmetrics);
        return code;
    };

    std::string design_name = jget(m, "design", mpath).as_string();
    std::string engine = jget(m, "engine", mpath).as_string();
    std::unique_ptr<Design> design = designs::build_design(design_name);
    ctx.design = design.get();
    ctx.factory = designs::make_target_factory(*design, engine);

    const obs::Json& cfg = jget(m, "config", mpath);
    ctx.campaign.seed = jget(cfg, "seed", mpath).as_u64();
    ctx.campaign.count = (int)jget(cfg, "count", mpath).as_int();
    ctx.campaign.cycles = jget(cfg, "cycles", mpath).as_u64();
    ctx.campaign.stuck_at = jget(cfg, "stuck_at", mpath).as_bool();
    ctx.campaign.max_stuck_cycles =
        jget(cfg, "max_stuck_cycles", mpath).as_u64();
    ctx.campaign.collect_coverage =
        jget(m, "collect_coverage", mpath).as_bool();
    ctx.campaign.jobs = (int)jget(m, "worker_jobs", mpath).as_int();
    // Operational like worker_jobs (absent from the identity check and
    // from pre-batching manifests): lane count per lockstep batch.
    if (const obs::Json* wb = m.find("worker_batch"))
        ctx.campaign.batch = (int)wb->as_int();
    ctx.chunk_size = (int)jget(m, "chunk_size", mpath).as_int();
    ctx.num_chunks = (int)jget(m, "num_chunks", mpath).as_int();
    ctx.worker_timeout = jget(m, "worker_timeout_seconds", mpath).as_double();
    ctx.chaos = jget(m, "chaos", mpath).as_double();

    // The whole fault list, drawn exactly as run_campaign draws it:
    // every worker (and the merge) agrees on what injection i is.
    ctx.faults = fault::generate_faults(*design, ctx.campaign);

    std::mt19937_64 chaos_rng((uint64_t)std::random_device{}() ^
                              ((uint64_t)::getpid() << 20) ^
                              (uint64_t)worker_id);

    for (;;) {
        if (shutdown_requested())
            return finish(kExitInterrupted, "worker/interrupted");
        bool all_resolved = true;
        bool claimed_any = false;
        for (int c = 0; c < ctx.num_chunks; ++c) {
            if (file_exists(chunk_result_path(dir, c)) ||
                file_exists(chunk_failed_path(dir, c)))
                continue;
            all_resolved = false;
            if (shutdown_requested())
                return finish(kExitInterrupted, "worker/interrupted");
            if (file_exists(lease_path(dir, c)))
                continue; // held (or in reclaim backoff) — skip
            if (!try_claim_lease(dir, c, worker_id)) {
                ctx.lease_conflicts++;
                wmetrics.inc("worker/lease_conflicts");
                obs::Json args = obs::Json::object();
                args["chunk"] = (int64_t)c;
                telemetry.event("lease/conflict", std::move(args));
                continue; // lost the race; not an error
            }
            claimed_any = true;
            {
                obs::Json args = obs::Json::object();
                args["chunk"] = (int64_t)c;
                telemetry.event("lease/claim", std::move(args));
            }
            if (run_claimed_chunk(ctx, c, chaos_rng) ==
                ChunkStatus::kInterrupted)
                return finish(kExitInterrupted, "worker/interrupted");
        }
        if (all_resolved)
            return finish(0, "worker/done");
        if (!claimed_any)
            sleep_ms(100); // everything leased out; wait for reclaims
    }
}

// -- Supervisor --------------------------------------------------------------

namespace {

struct Slot
{
    codegen::ChildProcess child;
    int restarts = 0;
    bool up = false;
};

std::string
resolve_worker_binary(const OrchestratorConfig& config)
{
    if (!config.worker_binary.empty())
        return config.worker_binary;
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
    if (n <= 0)
        fatal("cannot resolve the worker binary (readlink /proc/self/exe: "
              "%s); set OrchestratorConfig::worker_binary",
              std::strerror(errno));
    buf[n] = '\0';
    return buf;
}

codegen::ChildProcess
spawn_worker(const OrchestratorConfig& config, const std::string& binary,
             int slot_id, int attempt, obs::MetricsRegistry& metrics,
             obs::TelemetryWriter& telemetry)
{
    obs::ProfScope span("orch/spawn");
    std::string log = worker_log_path(config.dir, slot_id);
    if (attempt > 0) {
        // Rotate the dead incarnation's stderr out of the way so each
        // attempt's last words survive: worker-K.log.N is attempt N's
        // capture, worker-K.log the live one.
        std::rename(log.c_str(),
                    (log + "." + std::to_string(attempt - 1)).c_str());
    }
    std::vector<std::string> argv = {
        binary,
        "--fault-worker=" + config.dir,
        "--worker-id=" + std::to_string(slot_id),
    };
    codegen::ChildProcess child = codegen::spawn_process(argv, log);
    metrics.inc("orch/workers_spawned");
    obs::Json args = obs::Json::object();
    args["slot"] = (int64_t)slot_id;
    args["pid"] = (int64_t)child.pid;
    args["attempt"] = (int64_t)attempt;
    args["log"] = log;
    telemetry.event("worker/spawn", std::move(args));
    return child;
}

/** SIGTERM, grace period, then group SIGKILL; always reaps. */
void
terminate_workers(std::vector<Slot>& slots)
{
    for (Slot& slot : slots)
        if (slot.up)
            ::kill(slot.child.pid, SIGTERM);
    int exit_code = 0, term_signal = 0;
    double deadline = monotonic_seconds() + 2.0;
    for (;;) {
        bool any_up = false;
        for (Slot& slot : slots) {
            if (!slot.up)
                continue;
            if (codegen::try_reap(slot.child, &exit_code, &term_signal))
                slot.up = false;
            else
                any_up = true;
        }
        if (!any_up || monotonic_seconds() >= deadline)
            break;
        sleep_ms(20);
    }
    for (Slot& slot : slots)
        if (slot.up)
            codegen::kill_process_group(slot.child);
    deadline = monotonic_seconds() + 2.0;
    for (;;) {
        bool any_up = false;
        for (Slot& slot : slots) {
            if (!slot.up)
                continue;
            if (codegen::try_reap(slot.child, &exit_code, &term_signal))
                slot.up = false;
            else
                any_up = true;
        }
        if (!any_up || monotonic_seconds() >= deadline)
            break;
        sleep_ms(10);
    }
}

/**
 * Fold the chunk results into the final campaign report. Chunk files
 * are read in chunk order, so injections, coverage, and tallies come
 * out exactly as a single-process run produces them.
 */
void
merge_chunks(const OrchestratorConfig& config, int num_chunks,
             const std::vector<char>& resolved, OrchestratorReport& report,
             uint64_t* lease_conflicts)
{
    obs::ProfScope span("orch/merge");
    fault::CampaignReport& campaign = report.campaign;

    std::unique_ptr<Design> design = designs::build_design(config.design);
    campaign.design = design->name();
    campaign.engine = designs::engine_label(config.engine);
    campaign.config = config.campaign;

    int count = config.campaign.count;
    campaign.injections.assign((size_t)count, fault::InjectionRecord{});
    std::vector<char> present((size_t)count, 0);

    bool collect = config.campaign.collect_coverage;
    if (collect) {
        campaign.has_coverage = true;
        campaign.coverage = obs::CoverageMap::for_design(*design);
    }

    for (int c = 0; c < num_chunks; ++c) {
        if (resolved[(size_t)c] != 1)
            continue;
        std::string path = chunk_result_path(config.dir, c);
        obs::Json cj = read_json_file(path);
        check_schema(cj, kChunkSchema, path);
        if ((int)jget(cj, "chunk", path).as_int() != c)
            fatal("%s: chunk id mismatch", path.c_str());
        *lease_conflicts += jget(cj, "lease_conflicts", path).as_u64();
        const obs::Json& list = jget(cj, "injections", path);
        for (size_t i = 0; i < list.size(); ++i) {
            const obs::Json& e = list.at(i);
            uint64_t idx = jget(e, "index", path).as_u64();
            if (idx >= (uint64_t)count)
                fatal("%s: injection index %llu out of range", path.c_str(),
                      (unsigned long long)idx);
            campaign.injections[idx] = fault::injection_from_json(e);
            present[idx] = 1;
        }
        if (collect) {
            const obs::Json* cov = cj.find("coverage");
            if (cov == nullptr)
                fatal("%s: coverage-collecting campaign but chunk has no "
                      "coverage block",
                      path.c_str());
            campaign.coverage.merge(obs::CoverageMap::from_json(*cov));
        }
    }

    for (int i = 0; i < count; ++i) {
        if (!present[(size_t)i]) {
            report.missing_injections.push_back((uint64_t)i);
            continue;
        }
        switch (campaign.injections[(size_t)i].outcome) {
        case fault::Outcome::kMasked: campaign.masked++; break;
        case fault::Outcome::kSilentDataCorruption: campaign.sdc++; break;
        case fault::Outcome::kDetected: campaign.detected++; break;
        }
    }

    if (collect)
        campaign.coverage.add_engine(campaign.engine);
}

/**
 * The campaign with only the present records — what the fault metrics
 * tallies may see. For a complete campaign this is the campaign
 * itself, so the metrics (and the report block built from them) are
 * bitwise what the single-process path computes.
 */
fault::CampaignReport
present_only(const fault::CampaignReport& campaign,
             const std::vector<uint64_t>& missing)
{
    fault::CampaignReport tmp;
    tmp.design = campaign.design;
    tmp.engine = campaign.engine;
    tmp.config = campaign.config;
    tmp.masked = campaign.masked;
    tmp.sdc = campaign.sdc;
    tmp.detected = campaign.detected;
    if (missing.empty()) {
        tmp.injections = campaign.injections;
        return tmp;
    }
    std::vector<char> gone(campaign.injections.size(), 0);
    for (uint64_t idx : missing)
        gone[idx] = 1;
    for (size_t i = 0; i < campaign.injections.size(); ++i)
        if (!gone[i])
            tmp.injections.push_back(campaign.injections[i]);
    return tmp;
}

} // namespace

OrchestratorReport
run_orchestrator(const OrchestratorConfig& config)
{
    install_shutdown_handlers();
    double t0 = monotonic_seconds();

    if (config.workers < 1)
        fatal("--workers must be >= 1 (got %d)", config.workers);
    if (config.chunk_size < 1)
        fatal("--chunk-size must be >= 1 (got %d)", config.chunk_size);
    if (config.campaign.count < 0)
        fatal("--fault-count must be >= 0 (got %d)", config.campaign.count);

    int num_chunks = num_chunks_for(config.campaign.count, config.chunk_size);

    OrchestratorReport report;
    report.chunks_total = (uint64_t)num_chunks;
    report.dir = config.dir;
    obs::MetricsRegistry& metrics = report.metrics;

    mkdir_p(config.dir + "/chunks");
    mkdir_p(config.dir + "/leases");
    mkdir_p(config.dir + "/workers");

    // Fleet telemetry: the supervisor always records spans (lane
    // "supervisor"), appends its own telemetry stream, publishes a
    // live status.json, and merges every process's stream into the
    // fleet artifacts after the drain.
    obs::Profiler& prof = obs::Profiler::instance();
    if (!prof.enabled())
        prof.enable();
    prof.set_thread_name("supervisor");
    obs::TelemetryWriter telemetry(config.dir, "supervisor",
                                   codegen::compiler_identity_line());

    {
        obs::ProfScope span("orch/setup");
        obs::Json want = manifest_json(config, num_chunks);
        std::string mpath = manifest_path(config.dir);
        if (file_exists(mpath))
            check_manifest_identity(read_json_file(mpath), want, mpath);
        write_file_atomic(mpath, want.dump(2) + "\n");
        // Startup sweep: no worker of ours is alive yet, so every lease
        // is an orphan; failed markers get a fresh retry budget.
        for (int c = 0; c < num_chunks; ++c) {
            release_lease(config.dir, c);
            std::remove(chunk_failed_path(config.dir, c).c_str());
        }
    }

    std::string binary = resolve_worker_binary(config);
    std::vector<Slot> slots((size_t)config.workers);
    for (int k = 0; k < config.workers; ++k) {
        slots[(size_t)k].child =
            spawn_worker(config, binary, k, 0, metrics, telemetry);
        slots[(size_t)k].up = true;
    }

    // 0 = pending, 1 = completed, 2 = failed.
    std::vector<char> resolved((size_t)num_chunks, 0);
    std::vector<int> attempts((size_t)num_chunks, 0);
    std::vector<double> hold_until((size_t)num_chunks, 0.0);
    std::set<pid_t> dead_pids;
    int unresolved = num_chunks;
    uint64_t reclaimed = 0;
    uint64_t injections_done = 0;

    // Live introspection: an atomic cuttlesim-status-v1 snapshot of
    // the drain, rewritten throughout and readable mid-campaign by
    // `cuttlec --fault-status=DIR` (schema in docs/OBSERVABILITY.md).
    auto publish_status = [&](const char* state) {
        obs::Json s = obs::Json::object();
        s["schema"] = obs::kStatusSchema;
        s["state"] = state;
        s["campaign"] = config.design;
        s["design"] = config.design;
        s["engine"] = config.engine;
        s["updated_unix"] = (uint64_t)::time(nullptr);
        double wall = monotonic_seconds() - t0;
        s["wall_seconds"] = wall;
        obs::Json inj = obs::Json::object();
        inj["total"] = (uint64_t)config.campaign.count;
        inj["done"] = injections_done;
        s["injections"] = std::move(inj);
        double rate = wall > 0 ? (double)injections_done / wall : 0.0;
        s["trials_per_sec"] = rate;
        uint64_t remaining =
            (uint64_t)config.campaign.count - injections_done;
        s["eta_seconds"] = rate > 0 ? (double)remaining / rate : 0.0;
        obs::Json ch = obs::Json::object();
        ch["total"] = (uint64_t)num_chunks;
        ch["completed"] = report.chunks_completed;
        ch["failed"] = report.chunks_failed;
        uint64_t in_flight = 0;
        obs::Json inc = obs::Json::array();
        for (int c = 0; c < num_chunks; ++c) {
            if (resolved[(size_t)c] == 0 &&
                file_exists(lease_path(config.dir, c)))
                in_flight++;
            if (resolved[(size_t)c] != 1)
                inc.push_back((int64_t)c);
        }
        ch["in_flight"] = in_flight;
        s["chunks"] = std::move(ch);
        s["incomplete_chunks"] = std::move(inc);
        obs::Json ws = obs::Json::array();
        for (size_t k = 0; k < slots.size(); ++k) {
            const Slot& slot = slots[k];
            obs::Json w = obs::Json::object();
            w["slot"] = (int64_t)k;
            w["pid"] = (int64_t)std::max<pid_t>(slot.child.pid, 0);
            w["up"] = slot.up;
            w["restarts"] = (int64_t)slot.restarts;
            // Utilization comes from the worker's own last telemetry
            // snapshot (busy vs wall inside that process), not from
            // the supervisor's guess.
            obs::Json snap = obs::latest_snapshot(
                config.dir, "worker-" + std::to_string(k));
            double busy = 0, wwall = 0;
            if (const obs::Json* b = snap.find("busy_seconds"))
                busy = b->as_double();
            if (const obs::Json* ww = snap.find("wall_seconds"))
                wwall = ww->as_double();
            w["busy_seconds"] = busy;
            w["utilization"] = wwall > 0 ? busy / wwall : 0.0;
            ws.push_back(std::move(w));
        }
        s["workers"] = std::move(ws);
        write_file_atomic(status_path(config.dir), s.dump(2) + "\n");
    };
    {
        // Publish under the same span as the periodic refresh so the
        // merged fleet profile has an orch/status phase even when the
        // drain finishes before the first 0.5 s refresh fires.
        obs::ProfScope span("orch/status");
        publish_status("running");
    }
    double last_status = monotonic_seconds();

    auto mark_failed = [&](int c, const char* reason) {
        obs::Json f = obs::Json::object();
        f["schema"] = kFailedSchema;
        f["chunk"] = (int64_t)c;
        f["attempts"] = (int64_t)attempts[(size_t)c];
        f["reason"] = reason;
        write_file_atomic(chunk_failed_path(config.dir, c),
                          f.dump(2) + "\n");
        release_lease(config.dir, c);
        resolved[(size_t)c] = 2;
        unresolved--;
        report.failed_chunks.push_back(c);
        report.chunks_failed++;
        metrics.inc("orch/chunks_failed");
        obs::Json args = obs::Json::object();
        args["chunk"] = (int64_t)c;
        args["attempts"] = (int64_t)attempts[(size_t)c];
        args["reason"] = reason;
        telemetry.event("chunk/failed", std::move(args));
    };

    while (unresolved > 0) {
        if (shutdown_requested()) {
            report.interrupted = true;
            break;
        }

        {
            obs::ProfScope span("orch/scan");
            // Newly published results first, so a crashed worker's last
            // publish resolves its chunk before the reap respawns
            // anything for it.
            for (int c = 0; c < num_chunks; ++c) {
                if (resolved[(size_t)c] != 0)
                    continue;
                if (!file_exists(chunk_result_path(config.dir, c)))
                    continue;
                resolved[(size_t)c] = 1;
                unresolved--;
                report.chunks_completed++;
                metrics.inc("orch/chunks_completed");
                injections_done += (uint64_t)std::min(
                    config.chunk_size,
                    config.campaign.count - c * config.chunk_size);
                obs::Json args = obs::Json::object();
                args["chunk"] = (int64_t)c;
                telemetry.event("chunk/complete", std::move(args));
                // Publish-then-crash leaves the lease behind; the
                // result supersedes it.
                release_lease(config.dir, c);
                hold_until[(size_t)c] = 0;
            }
            for (Slot& slot : slots) {
                if (!slot.up)
                    continue;
                int exit_code = 0, term_signal = 0;
                pid_t pid = slot.child.pid;
                if (!codegen::try_reap(slot.child, &exit_code, &term_signal))
                    continue;
                dead_pids.insert(pid);
                slot.up = false;
                int slot_id = (int)(&slot - slots.data());
                {
                    obs::Json args = obs::Json::object();
                    args["slot"] = (int64_t)slot_id;
                    args["pid"] = (int64_t)pid;
                    if (term_signal != 0)
                        args["signal"] = (int64_t)term_signal;
                    else
                        args["exit"] = (int64_t)exit_code;
                    args["log"] = worker_log_path(config.dir, slot_id);
                    telemetry.event(term_signal != 0 ? "worker/signal"
                                                     : "worker/exit",
                                    std::move(args));
                }
                if (unresolved > 0 && !shutdown_requested() &&
                    slot.restarts < config.max_retries) {
                    slot.restarts++;
                    metrics.inc("orch/worker_restarts");
                    slot.child = spawn_worker(config, binary, slot_id,
                                              slot.restarts, metrics,
                                              telemetry);
                    slot.up = true;
                }
            }
        }

        {
            obs::ProfScope span("orch/reclaim");
            double now = monotonic_seconds();
            for (int c = 0; c < num_chunks; ++c) {
                if (resolved[(size_t)c] != 0)
                    continue;
                if (hold_until[(size_t)c] > 0) {
                    // Reclaim backoff: the stale lease stays in place
                    // (workers skip leased chunks) until the hold
                    // expires, then the chunk is claimable again.
                    if (now >= hold_until[(size_t)c]) {
                        release_lease(config.dir, c);
                        hold_until[(size_t)c] = 0;
                    }
                    continue;
                }
                std::string lp = lease_path(config.dir, c);
                if (!file_exists(lp))
                    continue;
                LeaseInfo lease;
                bool parsed = read_lease(lp, &lease);
                bool owner_dead =
                    parsed && lease.pid > 0 && dead_pids.count(lease.pid) > 0;
                bool stale = owner_dead;
                if (!stale) {
                    double age = heartbeat_age_seconds(config.dir, c);
                    stale = age > config.worker_timeout_seconds;
                    if (stale && parsed && lease.pid > 0) {
                        // Hung but alive: take out its whole process
                        // group; the next scan reaps and respawns.
                        codegen::ChildProcess owner;
                        owner.pid = lease.pid;
                        owner.command = "worker (hung)";
                        codegen::kill_process_group(owner);
                    }
                }
                if (!stale)
                    continue;
                reclaimed++;
                metrics.inc("orch/chunks_reclaimed");
                attempts[(size_t)c]++;
                {
                    obs::Json args = obs::Json::object();
                    args["chunk"] = (int64_t)c;
                    args["attempts"] = (int64_t)attempts[(size_t)c];
                    args["reason"] = owner_dead ? "owner-dead"
                                                : "stale-heartbeat";
                    telemetry.event("chunk/reclaim", std::move(args));
                }
                if (attempts[(size_t)c] > config.max_retries) {
                    mark_failed(c, "retry budget exhausted");
                } else {
                    metrics.inc("orch/chunks_retried");
                    double backoff = std::min(
                        0.1 * std::ldexp(1.0, attempts[(size_t)c] - 1), 5.0);
                    hold_until[(size_t)c] = now + backoff;
                    obs::Json args = obs::Json::object();
                    args["chunk"] = (int64_t)c;
                    args["attempt"] = (int64_t)attempts[(size_t)c];
                    args["backoff_seconds"] = backoff;
                    telemetry.event("chunk/retry", std::move(args));
                }
            }
        }

        // Every slot permanently down: pending chunks can never finish.
        bool any_up = std::any_of(slots.begin(), slots.end(),
                                  [](const Slot& s) { return s.up; });
        if (!any_up && unresolved > 0) {
            for (int c = 0; c < num_chunks; ++c)
                if (resolved[(size_t)c] == 0)
                    mark_failed(c, "no workers left");
            break;
        }

        if (monotonic_seconds() - last_status >= 0.5) {
            obs::ProfScope span("orch/status");
            publish_status("running");
            last_status = monotonic_seconds();
        }

        if (unresolved > 0 && !shutdown_requested())
            sleep_ms(50);
    }

    terminate_workers(slots);

    report.wall_seconds = monotonic_seconds() - t0;
    if (report.interrupted) {
        // Flush what we have: the per-process telemetry streams and a
        // final status are the partial artifacts an interrupted drain
        // leaves behind (nothing merged; rerun with the same flags).
        telemetry.event("drain/interrupted");
        telemetry.snapshot(metrics);
        publish_status("interrupted");
        return report;
    }
    telemetry.event("drain/done");

    uint64_t lease_conflicts = 0;
    merge_chunks(config, num_chunks, resolved, report, &lease_conflicts);
    metrics.inc("orch/lease_conflicts", lease_conflicts);
    metrics.inc("orch/chunks_claimed", report.chunks_completed + reclaimed);
    report.orchestration_config = obs::Json::object();
    report.orchestration_config["workers"] = (int64_t)config.workers;
    report.orchestration_config["chunk_size"] = (int64_t)config.chunk_size;
    report.orchestration_config["worker_timeout_seconds"] =
        config.worker_timeout_seconds;
    report.orchestration_config["max_retries"] = (int64_t)config.max_retries;
    report.orchestration_config["chaos"] = config.chaos;

    metrics.merge_from(fault::campaign_metrics(
        present_only(report.campaign, report.missing_injections)));

    {
        // Fleet merge: final supervisor snapshot first (so the merge
        // lane includes orch/merge), then fold every process's stream
        // into the three campaign-level artifacts. The merge span
        // itself is deliberately NOT in them — it is still open — so
        // the fleet phase set is identical for chaos and clean drains.
        obs::ProfScope span("orch/telemetry-merge");
        telemetry.snapshot(metrics);
        obs::FleetTelemetry fleet = obs::merge_fleet_telemetry(config.dir);
        metrics.inc("orch/telemetry_corrupt", fleet.corrupt_records);
        write_file_atomic(config.dir + "/fleet.prof.json",
                          fleet.report.to_json().dump(2) + "\n");
        write_file_atomic(config.dir + "/fleet.trace.json",
                          fleet.trace_json);
        write_file_atomic(config.dir + "/events.json",
                          fleet.events.dump(2) + "\n");
    }
    publish_status(report.chunks_failed > 0 ? "degraded" : "complete");

    {
        obs::ProfScope span("orch/report-write");
        write_file_atomic(config.dir + "/orchestrate.json",
                          report.to_json().dump(2) + "\n");
    }
    return report;
}

// -- Report ------------------------------------------------------------------

obs::Json
OrchestratorReport::to_json() const
{
    obs::Json j = obs::Json::object();
    j["schema"] = kReportSchema;
    j["design"] = campaign.design;
    j["engine"] = campaign.engine;
    j["config"] = fault::campaign_config_echo(campaign.config);
    j["orchestration"] = orchestration_config;

    obs::Json chunks = obs::Json::object();
    chunks["total"] = chunks_total;
    chunks["completed"] = chunks_completed;
    chunks["failed"] = chunks_failed;
    j["chunks"] = std::move(chunks);

    size_t total = campaign.injections.size();
    obs::Json summary = obs::Json::object();
    summary["injections"] = (uint64_t)(total - missing_injections.size());
    summary["masked"] = campaign.masked;
    summary["sdc"] = campaign.sdc;
    summary["detected"] = campaign.detected;
    summary["missing"] = (uint64_t)missing_injections.size();
    j["summary"] = std::move(summary);

    if (chunks_failed > 0 || !missing_injections.empty()) {
        obs::Json inc = obs::Json::object();
        obs::Json fc = obs::Json::array();
        for (int c : failed_chunks)
            fc.push_back((int64_t)c);
        inc["failed_chunks"] = std::move(fc);
        obs::Json mi = obs::Json::array();
        for (uint64_t idx : missing_injections)
            mi.push_back(idx);
        inc["missing_injections"] = std::move(mi);
        j["incomplete"] = std::move(inc);
    }

    // The embedded fault report: for a complete campaign these are the
    // exact bytes cuttlec's single-process --fault-report path writes
    // (same assembly functions, same inputs). With missing work, the
    // injections array is filtered to the records that exist and the
    // summary keeps the full-campaign counts plus a `missing` field.
    fault::CampaignReport filtered =
        present_only(campaign, missing_injections);
    obs::Json rep = fault::campaign_report_json(
        campaign, fault::campaign_metrics(filtered));
    if (!missing_injections.empty()) {
        std::vector<char> gone(total, 0);
        for (uint64_t idx : missing_injections)
            gone[idx] = 1;
        obs::Json list = obs::Json::array();
        for (size_t i = 0; i < total; ++i)
            if (!gone[i])
                list.push_back(
                    fault::injection_to_json(i, campaign.injections[i]));
        rep["injections"] = std::move(list);
        rep["summary"]["missing"] = (uint64_t)missing_injections.size();
    }
    j["report"] = std::move(rep);

    j["metrics"] = metrics.to_json();
    j["wall_seconds"] = wall_seconds;
    return j;
}

std::string
OrchestratorReport::to_text() const
{
    std::ostringstream os;
    os << "orchestrated fault campaign: " << campaign.design << " on "
       << campaign.engine << "\n";
    os << "  chunks:     " << chunks_completed << "/" << chunks_total
       << " completed";
    if (chunks_failed > 0)
        os << ", " << chunks_failed << " FAILED";
    os << "\n";
    os << "  reclaims:   " << metrics.counter("orch/chunks_reclaimed")
       << " (retried " << metrics.counter("orch/chunks_retried") << ")\n";
    os << "  workers:    " << metrics.counter("orch/workers_spawned")
       << " spawned, " << metrics.counter("orch/worker_restarts")
       << " restarts, " << metrics.counter("orch/lease_conflicts")
       << " lease conflicts\n";
    if (interrupted) {
        os << "  INTERRUPTED: rerun with the same flags to resume\n";
        return os.str();
    }
    if (!missing_injections.empty())
        os << "  INCOMPLETE: " << missing_injections.size()
           << " injections missing (see the report's `incomplete` block)\n";
    if (chunks_failed > 0 && !dir.empty())
        os << "  autopsy:    worker stderr in " << dir
           << "/workers/worker-*.log, event journal in " << dir
           << "/events.json\n";
    os << campaign.to_text();
    return os.str();
}

} // namespace koika::orchestrate
