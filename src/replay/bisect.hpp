/**
 * @file
 * Automatic first-divergence bisection between two engines.
 *
 * Case study 3's workflow, automated: when two engines (or one engine
 * and a perturbed copy) disagree somewhere inside a long run, finding
 * the first divergent cycle by comparing every cycle costs a full-state
 * compare per cycle. This module does what rr's reverse execution does
 * over committed state instead: run both engines in lockstep taking
 * periodic checkpoints and comparing only at checkpoint boundaries,
 * then binary-search inside the first disagreeing interval by restoring
 * from the last agreeing checkpoint and replaying to the midpoint.
 * Because engines are deterministic functions of committed state (the
 * paper's cycle-accuracy contract) and checkpoints capture peripheral
 * state too, every replay reproduces the original run exactly, and the
 * search converges on the precise cycle, register, and firing sets of
 * the first disagreement.
 */
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "koika/design.hpp"
#include "obs/json.hpp"
#include "replay/checkpoint.hpp"
#include "sim/model.hpp"

namespace koika::replay {

/**
 * One replayable system under test: the model plus the external
 * environment driving it. `stimulus` runs after every cycle (0-based
 * cycle index, the lockstep/fault convention). `save_env`/`load_env`
 * serialize peripheral state (RAM contents, pending responses) so a
 * restored subject replays byte-identically; both may be null for
 * closed designs. `context` keeps peripherals alive.
 */
struct Subject
{
    std::unique_ptr<sim::Model> model;
    std::function<void(sim::Model&, uint64_t)> stimulus;
    std::function<void(sim::StateWriter&)> save_env;
    std::function<void(sim::StateReader&)> load_env;
    std::shared_ptr<void> context;
};

/** Builds a fresh, identically-initialized subject per call. */
using SubjectFactory = std::function<Subject()>;

struct BisectConfig
{
    /** Lockstep horizon, in cycles. */
    uint64_t horizon = 1000;
    /**
     * Checkpoint/compare stride for the scan phase; 0 picks
     * max(1, horizon/16). Full-state compares happen only at stride
     * boundaries until the bracket is found.
     */
    uint64_t stride = 0;
    /**
     * Optional deterministic perturbation of subject B, applied at
     * every cycle boundary after the stimulus; receives the number of
     * committed cycles (1-based). Must be a pure function of that
     * count, so replays from a checkpoint reproduce it.
     */
    std::function<void(sim::Model&, uint64_t)> perturb_b;
};

struct DivergenceReport
{
    bool diverged = false;
    /** First cycle (1-based committed-cycle count) whose post-boundary
     *  committed state differs. */
    uint64_t cycle = 0;
    /** First divergent register (design order) and its name. */
    int reg = -1;
    std::string reg_name;
    /** The disagreeing values, rendered. */
    std::string value_a, value_b;
    /** Rules that committed during the divergent cycle, per engine. */
    std::vector<std::string> fired_a, fired_b;

    /** Engine labels, filled by the caller for reporting. */
    std::string engine_a, engine_b;

    // -- Search effort (how much work bisection saved/spent). ---------
    uint64_t checkpoints = 0;
    uint64_t replayed_cycles = 0;
    uint64_t state_compares = 0;

    obs::Json to_json() const;
    std::string to_text() const;
};

/**
 * Find the first divergent cycle between two subjects over `horizon`
 * cycles. Checkpoint-and-replay: O(horizon) forward work, O(log stride)
 * replays inside the bracket, full-state compares only at boundaries
 * and probe points.
 */
DivergenceReport bisect_divergence(const Design& design,
                                   const SubjectFactory& make_a,
                                   const SubjectFactory& make_b,
                                   const BisectConfig& config);

} // namespace koika::replay
