#include "replay/checkpoint.hpp"

#include <cstring>

#include "base/error.hpp"
#include "base/io.hpp"
#include "base/sha256.hpp"
#include "koika/print.hpp"
#include "obs/json.hpp"

namespace koika::replay {

namespace {

constexpr char kMagic[4] = {'C', 'K', 'P', 'T'};
constexpr uint32_t kVersion = 1;
/** Trailing checksum: 64 lowercase hex chars of SHA-256. */
constexpr size_t kChecksumLen = 64;

[[noreturn]] void
reject(const std::string& why)
{
    Diagnostic diag;
    diag.phase = "checkpoint";
    diag.detail = why;
    fatal_diag(std::move(diag), "invalid checkpoint: %s", why.c_str());
}

void
put_u32le(std::string& out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back((char)((v >> (8 * i)) & 0xff));
}

uint32_t
get_u32le(const std::string& in, size_t pos)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= (uint32_t)(uint8_t)in[pos + (size_t)i] << (8 * i);
    return v;
}

} // namespace

std::string
design_fingerprint(const Design& design)
{
    return sha256_hex(print_design(design));
}

const char*
Checkpoint::schema()
{
    return "cuttlesim-ckpt-v1";
}

Checkpoint
Checkpoint::capture(const Design& design, const sim::Model& model)
{
    KOIKA_CHECK(model.num_regs() == design.num_registers());
    Checkpoint ck;
    ck.design = design.name();
    ck.fingerprint = design_fingerprint(design);
    ck.cycle = model.cycles_run();
    ck.widths.reserve(design.num_registers());
    ck.regs.reserve(design.num_registers());
    for (size_t r = 0; r < design.num_registers(); ++r) {
        ck.widths.push_back(design.reg((int)r).type->width);
        ck.regs.push_back(model.get_reg((int)r));
    }
    if (const auto* cp =
            dynamic_cast<const sim::CheckpointableModel*>(&model)) {
        sim::StateWriter w;
        cp->save_extra_state(w);
        ck.set_section("engine:" + cp->state_key(), w.take());
    }
    return ck;
}

bool
Checkpoint::restore_into(const Design& d, sim::Model& model) const
{
    if (design != d.name())
        reject("checkpoint is for design '" + design +
               "', not '" + d.name() + "'");
    if (fingerprint != design_fingerprint(d))
        reject("design fingerprint mismatch for '" + design +
               "': the checkpoint was taken from a different version "
               "of the design");
    if (regs.size() != d.num_registers() ||
        model.num_regs() != d.num_registers())
        reject("register count mismatch");
    for (size_t r = 0; r < regs.size(); ++r) {
        if (regs[r].width() != d.reg((int)r).type->width)
            reject("width mismatch for register '" + d.reg((int)r).name +
                   "'");
        model.set_reg((int)r, regs[r]);
    }
    if (auto* cp = dynamic_cast<sim::CheckpointableModel*>(&model)) {
        if (const std::string* blob =
                section("engine:" + cp->state_key())) {
            sim::StateReader rd(*blob);
            cp->load_extra_state(rd);
            return true;
        }
    }
    return false;
}

const std::string*
Checkpoint::section(const std::string& name) const
{
    for (const Section& s : sections)
        if (s.name == name)
            return &s.bytes;
    return nullptr;
}

void
Checkpoint::set_section(const std::string& name, std::string bytes)
{
    for (Section& s : sections)
        if (s.name == name) {
            s.bytes = std::move(bytes);
            return;
        }
    sections.push_back({name, std::move(bytes)});
}

std::string
Checkpoint::serialize() const
{
    obs::Json header = obs::Json::object();
    header["schema"] = schema();
    header["design"] = design;
    header["fingerprint"] = fingerprint;
    header["cycle"] = cycle;
    obs::Json jw = obs::Json::array();
    for (uint32_t w : widths)
        jw.push_back((uint64_t)w);
    header["widths"] = std::move(jw);
    obs::Json js = obs::Json::array();
    for (const Section& s : sections) {
        obs::Json e = obs::Json::object();
        e["name"] = s.name;
        e["size"] = (uint64_t)s.bytes.size();
        js.push_back(std::move(e));
    }
    header["sections"] = std::move(js);
    std::string hdr = header.dump();

    std::string out(kMagic, sizeof kMagic);
    put_u32le(out, kVersion);
    put_u32le(out, (uint32_t)hdr.size());
    out += hdr;
    KOIKA_CHECK(regs.size() == widths.size());
    for (const Bits& v : regs) {
        for (uint32_t i = 0; i < v.nwords(); ++i) {
            uint64_t word = v.word(i);
            for (int b = 0; b < 8; ++b)
                out.push_back((char)((word >> (8 * b)) & 0xff));
        }
    }
    for (const Section& s : sections)
        out += s.bytes;
    out += sha256_hex(out);
    return out;
}

Checkpoint
Checkpoint::deserialize(const std::string& bytes)
{
    if (bytes.size() < sizeof kMagic + 8 + kChecksumLen)
        reject("file too short to be a checkpoint");
    if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0)
        reject("bad magic (not a cuttlesim-ckpt file)");
    uint32_t version = get_u32le(bytes, 4);
    if (version != kVersion)
        reject("unsupported format version " + std::to_string(version));

    std::string body = bytes.substr(0, bytes.size() - kChecksumLen);
    std::string sum = bytes.substr(bytes.size() - kChecksumLen);
    if (sha256_hex(body) != sum)
        reject("checksum mismatch: the file is corrupted or was "
               "modified after it was written");

    uint32_t hdr_len = get_u32le(bytes, 8);
    size_t pos = sizeof kMagic + 8;
    if (pos + hdr_len > body.size())
        reject("descriptor extends past end of file");
    obs::Json header;
    try {
        header = obs::Json::parse(body.substr(pos, hdr_len));
    } catch (const FatalError& e) {
        reject(std::string("unparseable descriptor: ") + e.message());
    }
    pos += hdr_len;

    const obs::Json* schema_field = header.find("schema");
    if (schema_field == nullptr || schema_field->as_string() != schema())
        reject("descriptor schema is not cuttlesim-ckpt-v1");

    Checkpoint ck;
    const obs::Json* jdesign = header.find("design");
    const obs::Json* jfp = header.find("fingerprint");
    const obs::Json* jcycle = header.find("cycle");
    const obs::Json* jwidths = header.find("widths");
    const obs::Json* jsections = header.find("sections");
    if (!jdesign || !jfp || !jcycle || !jwidths || !jsections)
        reject("descriptor is missing a required field");
    ck.design = jdesign->as_string();
    ck.fingerprint = jfp->as_string();
    ck.cycle = jcycle->as_u64();

    size_t reg_bytes = 0;
    for (size_t i = 0; i < jwidths->size(); ++i) {
        uint64_t w = jwidths->at(i).as_u64();
        if (w > Bits::kMaxWidth)
            reject("register width out of range");
        ck.widths.push_back((uint32_t)w);
        reg_bytes += ((w + 63) / 64) * 8;
    }
    if (pos + reg_bytes > body.size())
        reject("register payload extends past end of file");
    for (uint32_t w : ck.widths) {
        uint64_t words[Bits::kMaxWords] = {0};
        uint32_t nwords = (w + 63) / 64;
        for (uint32_t i = 0; i < nwords; ++i) {
            uint64_t word = 0;
            for (int b = 0; b < 8; ++b)
                word |= (uint64_t)(uint8_t)body[pos++] << (8 * b);
            words[i] = word;
        }
        Bits v = Bits::of_words(w, words, nwords);
        // Canonical form: a valid writer never sets bits above the
        // register width, so stray high bits mean corruption that the
        // checksum cannot catch (it covers the corrupted bytes too).
        if (v.nwords() > 0 && w % 64 != 0 &&
            (words[v.nwords() - 1] >> (w % 64)) != 0)
            reject("non-canonical register payload");
        ck.regs.push_back(v);
    }

    for (size_t i = 0; i < jsections->size(); ++i) {
        const obs::Json& e = jsections->at(i);
        const obs::Json* name = e.find("name");
        const obs::Json* size = e.find("size");
        if (!name || !size)
            reject("malformed section directory entry");
        uint64_t n = size->as_u64();
        if (pos + n > body.size())
            reject("section '" + name->as_string() +
                   "' extends past end of file");
        ck.sections.push_back({name->as_string(), body.substr(pos, n)});
        pos += n;
    }
    if (pos != body.size())
        reject("trailing bytes after last section");
    return ck;
}

void
Checkpoint::save(const std::string& path) const
{
    write_file_atomic(path, serialize());
}

Checkpoint
Checkpoint::load(const std::string& path)
{
    return deserialize(read_file(path));
}

void
append_spill_record(std::string& stream, const Checkpoint& ckpt)
{
    std::string rec = ckpt.serialize();
    for (int i = 0; i < 8; ++i)
        stream.push_back((char)(((uint64_t)rec.size() >> (8 * i)) & 0xff));
    stream += rec;
}

std::vector<Checkpoint>
parse_spill_stream(const std::string& stream)
{
    std::vector<Checkpoint> out;
    size_t pos = 0;
    while (pos < stream.size()) {
        if (stream.size() - pos < 8)
            reject("spill stream: truncated record length");
        uint64_t len = 0;
        for (int i = 0; i < 8; ++i)
            len |= (uint64_t)(uint8_t)stream[pos + (size_t)i] << (8 * i);
        pos += 8;
        if (stream.size() - pos < len)
            reject("spill stream: truncated record");
        out.push_back(Checkpoint::deserialize(stream.substr(pos, len)));
        pos += len;
    }
    return out;
}

} // namespace koika::replay
