/**
 * @file
 * Persistent checkpoints of simulation state (cuttlesim-ckpt-v1).
 *
 * The paper's headline debugging story (§4, case studies 1 and 3) is
 * rr-style time travel over committed state: a Cuttlesim model is a
 * plain sequential program, so a snapshot of its committed registers
 * *is* the simulation state, and saving/restoring one is cheap and
 * engine-agnostic. This module makes those snapshots durable:
 *
 *   - Checkpoint::capture() snapshots any sim::Model (reference
 *     interpreter, tiers T0-T5, GeneratedModel wrappers) between
 *     cycles: committed registers through the Model interface, plus the
 *     engine's auxiliary state (cycle counter, rule commit/abort
 *     tallies, coverage arrays) when the engine implements
 *     sim::CheckpointableModel.
 *   - Named sections carry whatever else a byte-identical resume
 *     needs: peripheral RAM and pending responses ("env"), coverage
 *     collector toggles ("coverage"), a metrics registry ("metrics").
 *   - save()/load() persist the cuttlesim-ckpt-v1 binary format:
 *     a "CKPT" magic and format version, a JSON descriptor (design
 *     name, SHA-256 design fingerprint, cycle count, register widths,
 *     section directory), the packed register payload, the section
 *     payloads, and a trailing SHA-256 over everything before it.
 *     load() validates all of that — magic, version, checksum, shape —
 *     and restore_into() additionally proves the checkpoint belongs to
 *     the design being restored (fingerprint match), so a stale or
 *     tampered checkpoint is rejected instead of silently corrupting a
 *     run. tools/check_ckpt_schema.py is the out-of-process validator
 *     for the same format.
 *
 * Writes are atomic (temp file + rename, base/io.hpp): a crash while
 * checkpointing never leaves a truncated file under the final name,
 * which is what makes long campaigns resumable.
 */
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "base/bits.hpp"
#include "koika/design.hpp"
#include "sim/model.hpp"
#include "sim/state.hpp"

namespace koika::replay {

/** SHA-256 of the printed design: names, widths, rules, schedule. */
std::string design_fingerprint(const Design& design);

class Checkpoint
{
  public:
    /** The on-disk schema tag ("cuttlesim-ckpt-v1"). */
    static const char* schema();

    std::string design;
    std::string fingerprint;
    /** Committed cycles at capture time (model.cycles_run()). */
    uint64_t cycle = 0;
    /** Register widths, design order (shape validation on restore). */
    std::vector<uint32_t> widths;
    /** Committed register values, design order. */
    std::vector<Bits> regs;

    /** Named auxiliary payloads (engine counters, peripherals, ...). */
    struct Section
    {
        std::string name;
        std::string bytes;
    };
    std::vector<Section> sections;

    /**
     * Snapshot `model` between cycles. Captures committed registers
     * and, when the engine implements sim::CheckpointableModel, its
     * auxiliary state under section "engine:<state_key>".
     */
    static Checkpoint capture(const Design& design,
                              const sim::Model& model);

    /**
     * Restore into `model`: validates that the checkpoint was taken
     * from this exact design (name, fingerprint, register shape),
     * writes every committed register back, and replays the engine
     * section when its state key matches. Returns true when the
     * engine's auxiliary state (cycle counter, rule/coverage counters)
     * was replayed; false means only registers were restored (the
     * engine family differs from the one that captured) and counters
     * restart from zero. FatalError on any mismatch with the design.
     */
    bool restore_into(const Design& design, sim::Model& model) const;

    /** Section payload by name; nullptr when absent. */
    const std::string* section(const std::string& name) const;
    /** Add or replace a section. */
    void set_section(const std::string& name, std::string bytes);

    /** The cuttlesim-ckpt-v1 byte string. */
    std::string serialize() const;
    /**
     * Parse and fully validate a byte string: magic, version, trailing
     * checksum, descriptor shape, payload sizes. FatalError with a
     * Diagnostic (phase "checkpoint") on any corruption.
     */
    static Checkpoint deserialize(const std::string& bytes);

    /** serialize() + atomic write (temp file + rename). */
    void save(const std::string& path) const;
    /** read + deserialize(); FatalError on IO or validation failure. */
    static Checkpoint load(const std::string& path);
};

/**
 * Append one length-prefixed checkpoint record to a spill stream (the
 * harness::Debugger ring-spill format: a file of consecutive
 * [u64 length][cuttlesim-ckpt-v1 record] entries, newest last).
 */
void append_spill_record(std::string& stream, const Checkpoint& ckpt);

/** Parse a spill stream back into records (oldest first). */
std::vector<Checkpoint> parse_spill_stream(const std::string& stream);

} // namespace koika::replay
