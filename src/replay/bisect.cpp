#include "replay/bisect.hpp"

#include <sstream>

#include "base/error.hpp"

namespace koika::replay {

namespace {

/** Run one cycle plus its boundary actions (stimulus, perturbation). */
void
run_boundary(Subject& s, uint64_t c,
             const std::function<void(sim::Model&, uint64_t)>& perturb)
{
    s.model->cycle();
    if (s.stimulus)
        s.stimulus(*s.model, c);
    if (perturb)
        perturb(*s.model, c + 1);
}

Checkpoint
capture_full(const Design& design, const Subject& s)
{
    Checkpoint ck = Checkpoint::capture(design, *s.model);
    if (s.save_env) {
        sim::StateWriter w;
        s.save_env(w);
        ck.set_section("env", w.take());
    }
    return ck;
}

void
restore_full(const Design& design, Subject& s, const Checkpoint& ck)
{
    ck.restore_into(design, *s.model);
    if (s.load_env) {
        const std::string* env = ck.section("env");
        KOIKA_CHECK(env != nullptr);
        sim::StateReader r(*env);
        s.load_env(r);
    }
}

bool
states_equal(const Subject& a, const Subject& b, size_t nregs,
             int* first_reg)
{
    for (size_t r = 0; r < nregs; ++r) {
        if (a.model->get_reg((int)r) != b.model->get_reg((int)r)) {
            if (first_reg != nullptr)
                *first_reg = (int)r;
            return false;
        }
    }
    return true;
}

std::vector<std::string>
fired_names(const sim::Model& m)
{
    std::vector<std::string> names;
    if (const auto* rs =
            dynamic_cast<const sim::RuleStatsModel*>(&m)) {
        const std::vector<bool>& fired = rs->fired();
        for (size_t r = 0; r < fired.size(); ++r)
            if (fired[r])
                names.push_back(rs->rule_name((int)r));
    }
    return names;
}

} // namespace

DivergenceReport
bisect_divergence(const Design& design, const SubjectFactory& make_a,
                  const SubjectFactory& make_b,
                  const BisectConfig& config)
{
    DivergenceReport rep;
    const size_t nregs = design.num_registers();
    uint64_t stride =
        config.stride != 0
            ? config.stride
            : std::max<uint64_t>(1, config.horizon / 16);

    // -- Scan: lockstep with periodic checkpoints, comparing only at
    // stride boundaries until an interval (lo, hi] disagrees.
    Subject a = make_a();
    Subject b = make_b();
    KOIKA_CHECK(a.model->num_regs() == nregs &&
                b.model->num_regs() == nregs);
    Checkpoint ck_a = capture_full(design, a);
    Checkpoint ck_b = capture_full(design, b);
    rep.checkpoints += 2;
    uint64_t lo = 0, hi = 0;
    bool bracketed = false;
    for (uint64_t c = 0; c < config.horizon; ++c) {
        run_boundary(a, c, nullptr);
        run_boundary(b, c, config.perturb_b);
        uint64_t done = c + 1;
        if (done % stride != 0 && done != config.horizon)
            continue;
        ++rep.state_compares;
        if (!states_equal(a, b, nregs, nullptr)) {
            hi = done;
            bracketed = true;
            break;
        }
        ck_a = capture_full(design, a);
        ck_b = capture_full(design, b);
        rep.checkpoints += 2;
        lo = done;
    }
    if (!bracketed)
        return rep;

    // -- Bisect: restore the pair from the last agreeing checkpoints
    // and replay to the midpoint; each probe halves (lo, hi].
    while (hi - lo > 1) {
        uint64_t mid = lo + (hi - lo) / 2;
        Subject pa = make_a();
        Subject pb = make_b();
        restore_full(design, pa, ck_a);
        restore_full(design, pb, ck_b);
        for (uint64_t c = lo; c < mid; ++c) {
            run_boundary(pa, c, nullptr);
            run_boundary(pb, c, config.perturb_b);
        }
        rep.replayed_cycles += 2 * (mid - lo);
        ++rep.state_compares;
        if (states_equal(pa, pb, nregs, nullptr)) {
            ck_a = capture_full(design, pa);
            ck_b = capture_full(design, pb);
            rep.checkpoints += 2;
            lo = mid;
        } else {
            hi = mid;
        }
    }

    // -- Attribute: replay the single divergent cycle to capture the
    // first disagreeing register and both firing sets.
    Subject fa = make_a();
    Subject fb = make_b();
    restore_full(design, fa, ck_a);
    restore_full(design, fb, ck_b);
    for (uint64_t c = lo; c < hi; ++c) {
        run_boundary(fa, c, nullptr);
        run_boundary(fb, c, config.perturb_b);
    }
    rep.replayed_cycles += 2 * (hi - lo);
    int first_reg = -1;
    ++rep.state_compares;
    bool equal = states_equal(fa, fb, nregs, &first_reg);
    KOIKA_CHECK(!equal);
    rep.diverged = true;
    rep.cycle = hi;
    rep.reg = first_reg;
    rep.reg_name = design.reg(first_reg).name;
    rep.value_a = fa.model->get_reg(first_reg).str();
    rep.value_b = fb.model->get_reg(first_reg).str();
    rep.fired_a = fired_names(*fa.model);
    rep.fired_b = fired_names(*fb.model);
    return rep;
}

obs::Json
DivergenceReport::to_json() const
{
    obs::Json j = obs::Json::object();
    j["schema"] = "cuttlesim-bisect-v1";
    j["engine_a"] = engine_a;
    j["engine_b"] = engine_b;
    j["diverged"] = diverged;
    if (diverged) {
        j["cycle"] = cycle;
        j["reg"] = (int64_t)reg;
        j["reg_name"] = reg_name;
        j["value_a"] = value_a;
        j["value_b"] = value_b;
        obs::Json fa = obs::Json::array();
        for (const std::string& n : fired_a)
            fa.push_back(n);
        j["fired_a"] = std::move(fa);
        obs::Json fb = obs::Json::array();
        for (const std::string& n : fired_b)
            fb.push_back(n);
        j["fired_b"] = std::move(fb);
    }
    obs::Json effort = obs::Json::object();
    effort["checkpoints"] = checkpoints;
    effort["replayed_cycles"] = replayed_cycles;
    effort["state_compares"] = state_compares;
    j["search"] = std::move(effort);
    return j;
}

std::string
DivergenceReport::to_text() const
{
    std::ostringstream os;
    std::string pair = engine_a.empty() && engine_b.empty()
                           ? std::string("engines")
                           : engine_a + " vs " + engine_b;
    if (!diverged) {
        os << "bisect: " << pair << ": no divergence found\n";
    } else {
        os << "bisect: " << pair << ": first divergence at cycle "
           << cycle << ": register '" << reg_name << "' (index " << reg
           << ")\n"
           << "  " << (engine_a.empty() ? "A" : engine_a) << " = "
           << value_a << ", " << (engine_b.empty() ? "B" : engine_b)
           << " = " << value_b << "\n";
        auto list = [&](const char* label,
                        const std::vector<std::string>& names) {
            os << "  fired(" << label << "):";
            if (names.empty())
                os << " (none)";
            for (const std::string& n : names)
                os << " " << n;
            os << "\n";
        };
        list(engine_a.empty() ? "A" : engine_a.c_str(), fired_a);
        list(engine_b.empty() ? "B" : engine_b.c_str(), fired_b);
    }
    os << "  search: " << checkpoints << " checkpoints, "
       << replayed_cycles << " replayed cycles, " << state_compares
       << " full-state compares\n";
    return os.str();
}

} // namespace koika::replay
