#include "koika/design.hpp"

namespace koika {

const char*
op_name(Op op)
{
    switch (op) {
      case Op::kNot: return "!";
      case Op::kNeg: return "-";
      case Op::kZExtL: return "zextl";
      case Op::kSExtL: return "sextl";
      case Op::kSlice: return "slice";
      case Op::kAnd: return "&";
      case Op::kOr: return "|";
      case Op::kXor: return "^";
      case Op::kAdd: return "+";
      case Op::kSub: return "-";
      case Op::kMul: return "*";
      case Op::kEq: return "==";
      case Op::kNe: return "!=";
      case Op::kLtu: return "<";
      case Op::kLeu: return "<=";
      case Op::kGtu: return ">";
      case Op::kGeu: return ">=";
      case Op::kLts: return "<s";
      case Op::kLes: return "<=s";
      case Op::kGts: return ">s";
      case Op::kGes: return ">=s";
      case Op::kLsl: return "<<";
      case Op::kLsr: return ">>";
      case Op::kAsr: return ">>>";
      case Op::kConcat: return "++";
    }
    return "?";
}

const char*
action_kind_name(ActionKind kind)
{
    switch (kind) {
      case ActionKind::kConst: return "const";
      case ActionKind::kVar: return "var";
      case ActionKind::kLet: return "let";
      case ActionKind::kAssign: return "set";
      case ActionKind::kSeq: return "seq";
      case ActionKind::kIf: return "if";
      case ActionKind::kRead: return "read";
      case ActionKind::kWrite: return "write";
      case ActionKind::kGuard: return "guard";
      case ActionKind::kUnop: return "unop";
      case ActionKind::kBinop: return "binop";
      case ActionKind::kGetField: return "getfield";
      case ActionKind::kSubstField: return "substfield";
      case ActionKind::kCall: return "call";
    }
    return "?";
}

int
Design::add_register(const std::string& name, TypePtr type, Bits init)
{
    if (reg_by_name_.count(name))
        fatal("duplicate register '%s'", name.c_str());
    if (init.width() != type->width)
        fatal("register '%s': init width %u does not match type %s",
              name.c_str(), init.width(), type->str().c_str());
    int idx = (int)regs_.size();
    regs_.push_back({name, std::move(type), std::move(init)});
    reg_by_name_[name] = idx;
    return idx;
}

int
Design::add_rule(const std::string& name, Action* body)
{
    if (rule_by_name_.count(name))
        fatal("duplicate rule '%s'", name.c_str());
    int idx = (int)rules_.size();
    rules_.push_back({name, body, 0});
    rule_by_name_[name] = idx;
    return idx;
}

void
Design::schedule(int rule_index)
{
    KOIKA_CHECK(rule_index >= 0 && (size_t)rule_index < rules_.size());
    schedule_.push_back(rule_index);
}

void
Design::schedule(const std::string& rule_name)
{
    int idx = rule_index(rule_name);
    if (idx < 0)
        fatal("cannot schedule unknown rule '%s'", rule_name.c_str());
    schedule(idx);
}

Action*
Design::alloc(ActionKind kind)
{
    auto node = std::make_unique<Action>();
    node->kind = kind;
    node->id = (int)arena_.size();
    Action* p = node.get();
    arena_.push_back(std::move(node));
    return p;
}

FunctionDef*
Design::alloc_function()
{
    functions_.push_back(std::make_unique<FunctionDef>());
    return functions_.back().get();
}

int
Design::reg_index(const std::string& name) const
{
    auto it = reg_by_name_.find(name);
    return it == reg_by_name_.end() ? -1 : it->second;
}

int
Design::rule_index(const std::string& name) const
{
    auto it = rule_by_name_.find(name);
    return it == rule_by_name_.end() ? -1 : it->second;
}

std::vector<Bits>
Design::initial_state() const
{
    std::vector<Bits> state;
    state.reserve(regs_.size());
    for (const auto& r : regs_)
        state.push_back(r.init);
    return state;
}

} // namespace koika
