/**
 * @file
 * Convenience layer for constructing Kôika designs from C++.
 *
 * This plays the role of the Coq/EDSL frontend of the original Kôika: a
 * thin, type-unaware construction API. All checking happens later in the
 * typechecker. Builder methods allocate nodes in the target Design's
 * arena; every Action* must appear exactly once in the finished AST (use
 * clone() to reuse a subtree).
 */
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

#include "koika/design.hpp"

namespace koika {

class Builder
{
  public:
    explicit Builder(Design& design) : d_(design) {}

    Design& design() { return d_; }

    // -- Registers --------------------------------------------------------
    int reg(const std::string& name, TypePtr type, Bits init);
    int reg(const std::string& name, uint32_t width, uint64_t init = 0);
    /** An array of registers name0..name{n-1}. */
    std::vector<int> reg_array(const std::string& name, size_t n,
                               TypePtr type, Bits init);

    // -- Constants ----------------------------------------------------------
    Action* k(uint32_t width, uint64_t v);
    Action* konst(Bits v);
    Action* konst_typed(TypePtr type, Bits v);
    /** Enum constant by member name. */
    Action* enum_k(TypePtr enum_type, const std::string& member);
    /** The unit value (bits<0>). */
    Action* unit();

    // -- Variables ------------------------------------------------------------
    Action* var(const std::string& name);
    Action* let(const std::string& name, Action* value, Action* body);
    Action* assign(const std::string& name, Action* value);

    // -- Control ---------------------------------------------------------------
    Action* seq(std::vector<Action*> actions);
    Action* if_(Action* cond, Action* then_a, Action* else_a = nullptr);
    /** if without else (unit-typed branches). */
    Action* when(Action* cond, Action* body) { return if_(cond, body); }
    Action* guard(Action* cond);
    /** Unconditional abort. */
    Action* abort();

    // -- State access -------------------------------------------------------
    Action* read0(int reg);
    Action* read1(int reg);
    Action* write0(int reg, Action* value);
    Action* write1(int reg, Action* value);
    Action* read(int reg, Port p) { return p == Port::p0 ? read0(reg) : read1(reg); }
    Action* write(int reg, Port p, Action* v) { return p == Port::p0 ? write0(reg, v) : write1(reg, v); }

    // -- Pure operators -------------------------------------------------------
    Action* unop(Op op, Action* a);
    Action* binop(Op op, Action* a, Action* b);
    Action* not_(Action* a) { return unop(Op::kNot, a); }
    Action* neg(Action* a) { return unop(Op::kNeg, a); }
    Action* zextl(Action* a, uint32_t width);
    Action* sextl(Action* a, uint32_t width);
    Action* slice(Action* a, uint32_t offset, uint32_t width);
    Action* and_(Action* a, Action* b) { return binop(Op::kAnd, a, b); }
    Action* or_(Action* a, Action* b) { return binop(Op::kOr, a, b); }
    Action* xor_(Action* a, Action* b) { return binop(Op::kXor, a, b); }
    Action* add(Action* a, Action* b) { return binop(Op::kAdd, a, b); }
    Action* sub(Action* a, Action* b) { return binop(Op::kSub, a, b); }
    Action* mul(Action* a, Action* b) { return binop(Op::kMul, a, b); }
    Action* eq(Action* a, Action* b) { return binop(Op::kEq, a, b); }
    Action* ne(Action* a, Action* b) { return binop(Op::kNe, a, b); }
    Action* ltu(Action* a, Action* b) { return binop(Op::kLtu, a, b); }
    Action* leu(Action* a, Action* b) { return binop(Op::kLeu, a, b); }
    Action* gtu(Action* a, Action* b) { return binop(Op::kGtu, a, b); }
    Action* geu(Action* a, Action* b) { return binop(Op::kGeu, a, b); }
    Action* lts(Action* a, Action* b) { return binop(Op::kLts, a, b); }
    Action* les(Action* a, Action* b) { return binop(Op::kLes, a, b); }
    Action* gts(Action* a, Action* b) { return binop(Op::kGts, a, b); }
    Action* ges(Action* a, Action* b) { return binop(Op::kGes, a, b); }
    Action* lsl(Action* a, Action* b) { return binop(Op::kLsl, a, b); }
    Action* lsr(Action* a, Action* b) { return binop(Op::kLsr, a, b); }
    Action* asr(Action* a, Action* b) { return binop(Op::kAsr, a, b); }
    Action* concat(Action* hi, Action* lo) { return binop(Op::kConcat, hi, lo); }

    // -- Structs ---------------------------------------------------------------
    Action* get(Action* a, const std::string& field);
    Action* subst(Action* a, const std::string& field, Action* value);
    /** Build a struct value field by field (missing fields are zero). */
    Action* struct_init(
        TypePtr type,
        std::vector<std::pair<std::string, Action*>> fields);

    // -- Functions ----------------------------------------------------------
    FunctionDef* fn(const std::string& name,
                    std::vector<std::pair<std::string, TypePtr>> params,
                    TypePtr ret, Action* body);
    Action* call(const FunctionDef* fn, std::vector<Action*> args);

    // -- Register-array helpers (mux lowering) --------------------------------
    /** Read regs[idx] via a mux tree over the dynamic index. */
    Action* mux_read(const std::vector<int>& regs, Action* idx, Port port);
    /** Write regs[idx] via a chain of predicated writes. */
    Action* mux_write(const std::vector<int>& regs, Action* idx,
                      Action* value, Port port);

    /** Deep-copy a subtree (for reusing an expression in two places). */
    Action* clone(const Action* a);

  private:
    Design& d_;
};

} // namespace koika
