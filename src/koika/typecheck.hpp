/**
 * @file
 * The Kôika typechecker.
 *
 * Checks widths and types, resolves variable references to evaluation-frame
 * slots, verifies that internal functions are purely combinational, and
 * verifies that the AST is a tree (no shared subtrees, which would confuse
 * per-node analyses). On success, every node carries its type and the
 * design is marked typechecked; on failure a FatalError describes the
 * problem.
 */
#pragma once

#include "koika/design.hpp"

namespace koika {

/** Typecheck a whole design (throws FatalError on ill-typed input). */
void typecheck(Design& design);

} // namespace koika
