#include "koika/types.hpp"

#include <map>
#include <mutex>

namespace koika {

int
Type::field_index(const std::string& fname) const
{
    for (size_t i = 0; i < fields.size(); ++i)
        if (fields[i].name == fname)
            return (int)i;
    return -1;
}

int
Type::member_index(const std::string& mname) const
{
    for (size_t i = 0; i < members.size(); ++i)
        if (members[i].name == mname)
            return (int)i;
    return -1;
}

std::string
Type::str() const
{
    switch (kind) {
      case Kind::kBits:
        return "bits<" + std::to_string(width) + ">";
      case Kind::kEnum:
        return "enum " + name;
      case Kind::kStruct:
        return "struct " + name;
    }
    return "?";
}

TypePtr
bits_type(uint32_t width)
{
    KOIKA_CHECK(width <= Bits::kMaxWidth);
    // The intern table is process-global shared state; the parallel
    // harness builds engines from worker threads, so guard it.
    static std::mutex* mutex = new std::mutex();
    static std::map<uint32_t, TypePtr>* interned =
        new std::map<uint32_t, TypePtr>();
    std::lock_guard<std::mutex> lock(*mutex);
    auto it = interned->find(width);
    if (it != interned->end())
        return it->second;
    auto t = std::make_shared<Type>();
    t->kind = Type::Kind::kBits;
    t->width = width;
    (*interned)[width] = t;
    return t;
}

TypePtr
unit_type()
{
    return bits_type(0);
}

TypePtr
make_enum(const std::string& name,
          const std::vector<std::string>& member_names, uint32_t width)
{
    KOIKA_CHECK(!member_names.empty());
    if (width == 0) {
        uint32_t n = (uint32_t)member_names.size();
        width = 1;
        while ((1u << width) < n)
            ++width;
    }
    std::vector<EnumMember> members;
    for (size_t i = 0; i < member_names.size(); ++i)
        members.push_back({member_names[i], Bits::of(width, i)});
    return make_enum_explicit(name, members);
}

TypePtr
make_enum_explicit(const std::string& name,
                   const std::vector<EnumMember>& members)
{
    KOIKA_CHECK(!members.empty());
    auto t = std::make_shared<Type>();
    t->kind = Type::Kind::kEnum;
    t->name = name;
    t->width = members[0].value.width();
    t->members = members;
    for (const auto& m : members)
        KOIKA_CHECK(m.value.width() == t->width);
    return t;
}

TypePtr
make_struct(const std::string& name, std::vector<Field> fields)
{
    auto t = std::make_shared<Type>();
    t->kind = Type::Kind::kStruct;
    t->name = name;
    t->fields = std::move(fields);
    // First field is most significant: assign offsets from the end.
    uint32_t total = 0;
    for (const auto& f : t->fields)
        total += f.type->width;
    KOIKA_CHECK(total <= Bits::kMaxWidth);
    uint32_t off = total;
    for (auto& f : t->fields) {
        off -= f.type->width;
        f.offset = off;
    }
    t->width = total;
    return t;
}

bool
same_type(const TypePtr& a, const TypePtr& b)
{
    if (a.get() == b.get())
        return true;
    if (a->kind != b->kind || a->width != b->width)
        return false;
    if (a->is_bits())
        return true;
    // Named types compare nominally.
    return a->name == b->name;
}

} // namespace koika
