/**
 * @file
 * The Kôika type system: sized bit vectors, enums, and structs.
 *
 * Types are structural wrappers around a bit width. Enums and structs add
 * interpretation (named members / named fields) on top of a packed bits
 * representation; at simulation time every value is a flat koika::Bits,
 * while the Cuttlesim code generator maps enums and structs to native C++
 * enum classes and structs for readability (paper §4.2, case study 1).
 */
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/bits.hpp"

namespace koika {

struct Type;
using TypePtr = std::shared_ptr<const Type>;

/** A named, typed struct field. */
struct Field
{
    std::string name;
    TypePtr type;
    /** Bit offset of the field from the LSB of the packed value. */
    uint32_t offset = 0;
};

/** A named enum member and its encoding. */
struct EnumMember
{
    std::string name;
    Bits value;
};

struct Type
{
    enum class Kind { kBits, kEnum, kStruct };

    Kind kind = Kind::kBits;
    uint32_t width = 0;
    /** Type name; empty for anonymous bits types. */
    std::string name;

    /** Enum members (kind == kEnum). */
    std::vector<EnumMember> members;
    /** Struct fields, first field most significant (kind == kStruct). */
    std::vector<Field> fields;

    bool is_bits() const { return kind == Kind::kBits; }
    bool is_enum() const { return kind == Kind::kEnum; }
    bool is_struct() const { return kind == Kind::kStruct; }

    /** Index of a field by name, or -1. */
    int field_index(const std::string& fname) const;
    /** Index of an enum member by name, or -1. */
    int member_index(const std::string& mname) const;

    /** Human-readable type name ("bits<32>", "enum state", ...). */
    std::string str() const;
};

/** The anonymous bits type of a given width (interned for small widths). */
TypePtr bits_type(uint32_t width);

/** The unit type: bits<0>. */
TypePtr unit_type();

/**
 * Define an enum type. Member encodings default to 0, 1, 2... in the
 * smallest width that fits unless explicit values are supplied.
 */
TypePtr make_enum(const std::string& name,
                  const std::vector<std::string>& member_names,
                  uint32_t width = 0);

/** Define an enum with explicit member encodings (all same width). */
TypePtr make_enum_explicit(const std::string& name,
                           const std::vector<EnumMember>& members);

/**
 * Define a struct type; fields are listed most-significant first, matching
 * Kôika's packing convention. Field offsets and total width are computed.
 */
TypePtr make_struct(const std::string& name, std::vector<Field> fields);

/** Structural type equality (same kind, width, names, members/fields). */
bool same_type(const TypePtr& a, const TypePtr& b);

} // namespace koika
