#include "koika/typecheck.hpp"

#include <set>

namespace koika {

namespace {

struct Binding
{
    std::string name;
    int slot;
    TypePtr type;
};

class Checker
{
  public:
    explicit Checker(Design& d) : d_(d) {}

    void
    run()
    {
        for (const auto& f : d_.functions())
            in_context("function", f->name,
                       [&] { check_function(f.get()); });
        std::set<int> scheduled;
        for (int r : d_.schedule_order()) {
            if (scheduled.count(r))
                fatal("rule '%s' scheduled more than once",
                      d_.rule(r).name.c_str());
            scheduled.insert(r);
        }
        for (size_t i = 0; i < d_.num_rules(); ++i) {
            Rule& rule = d_.rule_mut((int)i);
            scope_.clear();
            max_slots_ = 0;
            in_function_ = false;
            in_context("rule", rule.name, [&] {
                TypePtr t = check(rule.body);
                (void)t;
            });
            rule.nslots = max_slots_;
        }
        d_.typechecked = true;
    }

  private:
    /**
     * Run `body`, prefixing any user-facing error with the rule or
     * function it came from — "unbound variable 'v'" alone is useless
     * against a thousand-rule design — and tagging it with a typecheck
     * Diagnostic. Errors that already carry a context keep theirs.
     */
    template <typename F>
    void
    in_context(const char* what, const std::string& name, F&& body)
    {
        try {
            body();
        } catch (const FatalError& err) {
            Diagnostic diag = err.diagnostic();
            if (diag.phase.empty())
                diag.phase = "typecheck";
            if (diag.design.empty())
                diag.design = d_.name();
            throw FatalError("in " + std::string(what) + " '" + name +
                                 "': " + err.message(),
                             std::move(diag));
        }
    }

    void
    check_function(FunctionDef* f)
    {
        scope_.clear();
        max_slots_ = 0;
        in_function_ = true;
        for (const auto& [pname, ptype] : f->params)
            push_binding(pname, ptype);
        TypePtr body_t = check(f->body);
        if (!same_type(body_t, f->ret))
            fatal("function '%s': body has type %s, declared %s",
                  f->name.c_str(), body_t->str().c_str(),
                  f->ret->str().c_str());
        f->nslots = max_slots_;
        checked_fns_.insert(f);
    }

    void
    push_binding(const std::string& name, TypePtr type)
    {
        int slot = (int)scope_.size();
        scope_.push_back({name, slot, std::move(type)});
        if ((int)scope_.size() > max_slots_)
            max_slots_ = (int)scope_.size();
    }

    const Binding*
    lookup(const std::string& name) const
    {
        for (size_t i = scope_.size(); i-- > 0;)
            if (scope_[i].name == name)
                return &scope_[i];
        return nullptr;
    }

    TypePtr
    check(Action* a)
    {
        // Reachable from user designs (a Builder call handed a null
        // subtree), so a diagnostic, not a panic.
        if (a == nullptr)
            fatal("malformed design: null action in the AST");
        if (a->type != nullptr)
            fatal("AST node %d (%s) appears more than once; "
                  "use Builder::clone for subtree reuse",
                  a->id, action_kind_name(a->kind));
        TypePtr t = check_inner(a);
        a->type = t;
        return t;
    }

    TypePtr
    check_inner(Action* a)
    {
        switch (a->kind) {
          case ActionKind::kConst:
            if (a->const_type == nullptr)
                fatal("malformed design: constant literal is missing "
                      "its type");
            if (a->const_type->width != a->value.width())
                fatal("literal width %u does not match type %s",
                      a->value.width(), a->const_type->str().c_str());
            return a->const_type;

          case ActionKind::kVar: {
            const Binding* b = lookup(a->var);
            if (b == nullptr)
                fatal("unbound variable '%s'", a->var.c_str());
            a->slot = b->slot;
            return b->type;
          }

          case ActionKind::kLet: {
            TypePtr vt = check(a->a0);
            size_t depth = scope_.size();
            push_binding(a->var, vt);
            a->slot = (int)depth;
            TypePtr bt = check(a->a1);
            scope_.resize(depth);
            return bt;
          }

          case ActionKind::kAssign: {
            const Binding* b = lookup(a->var);
            if (b == nullptr)
                fatal("assignment to unbound variable '%s'", a->var.c_str());
            TypePtr vt = check(a->a0);
            if (!same_type(vt, b->type))
                fatal("assignment to '%s': value has type %s, variable %s",
                      a->var.c_str(), vt->str().c_str(),
                      b->type->str().c_str());
            a->slot = b->slot;
            return unit_type();
          }

          case ActionKind::kSeq:
            check(a->a0);
            return check(a->a1);

          case ActionKind::kIf: {
            TypePtr ct = check(a->a0);
            if (!ct->is_bits() || ct->width != 1)
                fatal("if condition must be bits<1>, got %s",
                      ct->str().c_str());
            TypePtr tt = check(a->a1);
            TypePtr et = check(a->a2);
            if (!same_type(tt, et))
                fatal("if branches disagree: %s vs %s", tt->str().c_str(),
                      et->str().c_str());
            return tt;
          }

          case ActionKind::kRead:
            check_stateful(a);
            check_reg(a->reg);
            return d_.reg(a->reg).type;

          case ActionKind::kWrite: {
            check_stateful(a);
            check_reg(a->reg);
            TypePtr vt = check(a->a0);
            if (!same_type(vt, d_.reg(a->reg).type))
                fatal("write to '%s': value has type %s, register %s",
                      d_.reg(a->reg).name.c_str(), vt->str().c_str(),
                      d_.reg(a->reg).type->str().c_str());
            return unit_type();
          }

          case ActionKind::kGuard: {
            check_stateful(a);
            TypePtr ct = check(a->a0);
            if (!ct->is_bits() || ct->width != 1)
                fatal("guard condition must be bits<1>, got %s",
                      ct->str().c_str());
            return unit_type();
          }

          case ActionKind::kUnop:
            return check_unop(a);

          case ActionKind::kBinop:
            return check_binop(a);

          case ActionKind::kGetField: {
            TypePtr st = check(a->a0);
            if (!st->is_struct())
                fatal("field access '.%s' on non-struct %s",
                      a->field.c_str(), st->str().c_str());
            int idx = st->field_index(a->field);
            if (idx < 0)
                fatal("struct %s has no field '%s'", st->name.c_str(),
                      a->field.c_str());
            a->field_index = idx;
            return st->fields[(size_t)idx].type;
          }

          case ActionKind::kSubstField: {
            TypePtr st = check(a->a0);
            if (!st->is_struct())
                fatal("field update '.%s' on non-struct %s",
                      a->field.c_str(), st->str().c_str());
            int idx = st->field_index(a->field);
            if (idx < 0)
                fatal("struct %s has no field '%s'", st->name.c_str(),
                      a->field.c_str());
            a->field_index = idx;
            TypePtr vt = check(a->a1);
            if (!same_type(vt, st->fields[(size_t)idx].type))
                fatal("update of %s.%s: value has type %s, field %s",
                      st->name.c_str(), a->field.c_str(), vt->str().c_str(),
                      st->fields[(size_t)idx].type->str().c_str());
            return st;
          }

          case ActionKind::kCall: {
            if (a->fn == nullptr)
                fatal("malformed design: call action has no callee");
            if (!checked_fns_.count(a->fn))
                fatal("call to function '%s' before its definition "
                      "(recursion is not allowed)",
                      a->fn->name.c_str());
            if (a->args.size() != a->fn->params.size())
                fatal("call to '%s': %zu args, %zu params",
                      a->fn->name.c_str(), a->args.size(),
                      a->fn->params.size());
            for (size_t i = 0; i < a->args.size(); ++i) {
                TypePtr at = check(a->args[i]);
                if (!same_type(at, a->fn->params[i].second))
                    fatal("call to '%s': arg %zu has type %s, param %s",
                          a->fn->name.c_str(), i, at->str().c_str(),
                          a->fn->params[i].second->str().c_str());
            }
            return a->fn->ret;
          }
        }
        // Not a switch default: every valid ActionKind is handled
        // above, so reaching here means the node's kind field holds an
        // out-of-range value. Hand-built ASTs can do that; report it
        // instead of aborting the process.
        fatal("malformed design: action node %d has invalid kind %d",
              a->id, (int)a->kind);
    }

    void
    check_stateful(const Action* a)
    {
        if (in_function_)
            fatal("internal functions must be combinational: "
                  "%s is not allowed inside a function body",
                  action_kind_name(a->kind));
    }

    void
    check_reg(int reg) const
    {
        if (reg < 0 || (size_t)reg >= d_.num_registers())
            fatal("reference to unknown register index %d", reg);
    }

    TypePtr
    check_unop(Action* a)
    {
        TypePtr at = check(a->a0);
        auto need_bits = [&]() {
            if (!at->is_bits())
                fatal("operator %s needs a bits operand, got %s",
                      op_name(a->op), at->str().c_str());
        };
        switch (a->op) {
          case Op::kNot:
          case Op::kNeg:
            need_bits();
            return at;
          case Op::kZExtL:
          case Op::kSExtL:
            need_bits();
            return bits_type(a->imm0);
          case Op::kSlice:
            need_bits();
            if (a->imm0 + a->imm1 > at->width)
                fatal("slice [%u +: %u] out of range for %s", a->imm0,
                      a->imm1, at->str().c_str());
            return bits_type(a->imm1);
          default:
            fatal("operator %s is not unary", op_name(a->op));
        }
    }

    TypePtr
    check_binop(Action* a)
    {
        TypePtr at = check(a->a0);
        TypePtr bt = check(a->a1);
        auto need_bits_same = [&]() {
            if (!at->is_bits() || !bt->is_bits() || at->width != bt->width)
                fatal("operator %s needs equal-width bits operands, "
                      "got %s and %s",
                      op_name(a->op), at->str().c_str(), bt->str().c_str());
        };
        switch (a->op) {
          case Op::kAnd:
          case Op::kOr:
          case Op::kXor:
          case Op::kAdd:
          case Op::kSub:
          case Op::kMul:
            need_bits_same();
            return at;
          case Op::kEq:
          case Op::kNe:
            if (!same_type(at, bt))
                fatal("equality between %s and %s", at->str().c_str(),
                      bt->str().c_str());
            return bits_type(1);
          case Op::kLtu:
          case Op::kLeu:
          case Op::kGtu:
          case Op::kGeu:
            need_bits_same();
            return bits_type(1);
          case Op::kLts:
          case Op::kLes:
          case Op::kGts:
          case Op::kGes:
            need_bits_same();
            if (at->width == 0)
                fatal("signed comparison on bits<0>");
            return bits_type(1);
          case Op::kLsl:
          case Op::kLsr:
          case Op::kAsr:
            if (!at->is_bits() || !bt->is_bits())
                fatal("shift needs bits operands");
            if (a->op == Op::kAsr && at->width == 0)
                fatal("arithmetic shift on bits<0>");
            return at;
          case Op::kConcat:
            if (!at->is_bits() || !bt->is_bits())
                fatal("concat needs bits operands");
            return bits_type(at->width + bt->width);
          default:
            fatal("operator %s is not binary", op_name(a->op));
        }
    }

    Design& d_;
    std::vector<Binding> scope_;
    int max_slots_ = 0;
    bool in_function_ = false;
    std::set<const FunctionDef*> checked_fns_;
};

} // namespace

void
typecheck(Design& design)
{
    Checker(design).run();
}

} // namespace koika
