#include "koika/print.hpp"

#include <sstream>

namespace koika {

namespace {

class Printer
{
  public:
    explicit Printer(const Design& d) : d_(d) {}

    std::string
    action_line(const Action* a)
    {
        std::ostringstream os;
        expr(os, a);
        return os.str();
    }

    std::string
    design()
    {
        std::ostringstream os;
        os << "design " << d_.name() << " {\n";
        for (size_t i = 0; i < d_.num_registers(); ++i) {
            const RegInfo& r = d_.reg((int)i);
            os << "  register " << r.name << " : " << r.type->str()
               << " = " << r.init.str() << ";\n";
        }
        for (const auto& f : d_.functions()) {
            os << "  function " << f->name << "(";
            for (size_t i = 0; i < f->params.size(); ++i) {
                if (i)
                    os << ", ";
                os << f->params[i].first << " : "
                   << f->params[i].second->str();
            }
            os << ") : " << f->ret->str() << " =\n";
            block(os, f->body, 4);
            os << "\n";
        }
        for (size_t i = 0; i < d_.num_rules(); ++i) {
            os << "  rule " << d_.rule((int)i).name << " =\n";
            block(os, d_.rule((int)i).body, 4);
            os << "\n";
        }
        os << "  schedule:";
        for (int r : d_.schedule_order())
            os << " " << d_.rule(r).name;
        os << "\n}\n";
        return os.str();
    }

  private:
    void
    indent(std::ostringstream& os, int n)
    {
        for (int i = 0; i < n; ++i)
            os << ' ';
    }

    /** Statement-level rendering: one action per line. */
    void
    block(std::ostringstream& os, const Action* a, int ind)
    {
        switch (a->kind) {
          case ActionKind::kSeq:
            block(os, a->a0, ind);
            os << ";\n";
            block(os, a->a1, ind);
            return;
          case ActionKind::kLet:
            indent(os, ind);
            os << "let " << a->var << " := ";
            expr(os, a->a0);
            os << " in\n";
            block(os, a->a1, ind);
            return;
          case ActionKind::kIf: {
            indent(os, ind);
            os << "if (";
            expr(os, a->a0);
            os << ") {\n";
            block(os, a->a1, ind + 2);
            os << "\n";
            indent(os, ind);
            if (is_unit_const(a->a2)) {
                os << "}";
            } else {
                os << "} else {\n";
                block(os, a->a2, ind + 2);
                os << "\n";
                indent(os, ind);
                os << "}";
            }
            return;
          }
          default:
            indent(os, ind);
            expr(os, a);
            return;
        }
    }

    std::string
    reg_name(int reg) const
    {
        if (reg >= 0 && (size_t)reg < d_.num_registers())
            return d_.reg(reg).name;
        return "r" + std::to_string(reg);
    }

    static bool
    is_unit_const(const Action* a)
    {
        return a->kind == ActionKind::kConst && a->value.width() == 0;
    }

    void
    expr(std::ostringstream& os, const Action* a)
    {
        switch (a->kind) {
          case ActionKind::kConst:
            if (a->const_type != nullptr && a->const_type->is_enum()) {
                for (const auto& m : a->const_type->members) {
                    if (m.value == a->value) {
                        os << a->const_type->name << "::" << m.name;
                        return;
                    }
                }
            }
            os << a->value.str();
            return;
          case ActionKind::kVar:
            os << a->var;
            return;
          case ActionKind::kLet:
            os << "(let " << a->var << " := ";
            expr(os, a->a0);
            os << " in ";
            expr(os, a->a1);
            os << ")";
            return;
          case ActionKind::kAssign:
            os << "set " << a->var << " := ";
            expr(os, a->a0);
            return;
          case ActionKind::kSeq:
            os << "(";
            expr(os, a->a0);
            os << "; ";
            expr(os, a->a1);
            os << ")";
            return;
          case ActionKind::kIf:
            os << "(if ";
            expr(os, a->a0);
            os << " then ";
            expr(os, a->a1);
            os << " else ";
            expr(os, a->a2);
            os << ")";
            return;
          case ActionKind::kRead:
            os << reg_name(a->reg) << ".rd"
               << (a->port == Port::p0 ? "0" : "1") << "()";
            return;
          case ActionKind::kWrite:
            os << reg_name(a->reg) << ".wr"
               << (a->port == Port::p0 ? "0" : "1") << "(";
            expr(os, a->a0);
            os << ")";
            return;
          case ActionKind::kGuard:
            os << "guard(";
            expr(os, a->a0);
            os << ")";
            return;
          case ActionKind::kUnop:
            switch (a->op) {
              case Op::kZExtL:
              case Op::kSExtL:
                os << op_name(a->op) << "(";
                expr(os, a->a0);
                os << ", " << a->imm0 << ")";
                return;
              case Op::kSlice:
                expr(os, a->a0);
                os << "[" << a->imm0 << " +: " << a->imm1 << "]";
                return;
              default:
                os << op_name(a->op) << "(";
                expr(os, a->a0);
                os << ")";
                return;
            }
          case ActionKind::kBinop:
            os << "(";
            expr(os, a->a0);
            os << " " << op_name(a->op) << " ";
            expr(os, a->a1);
            os << ")";
            return;
          case ActionKind::kGetField:
            expr(os, a->a0);
            os << "." << a->field;
            return;
          case ActionKind::kSubstField:
            os << "{ ";
            expr(os, a->a0);
            os << " with " << a->field << " := ";
            expr(os, a->a1);
            os << " }";
            return;
          case ActionKind::kCall:
            os << a->fn->name << "(";
            for (size_t i = 0; i < a->args.size(); ++i) {
                if (i)
                    os << ", ";
                expr(os, a->args[i]);
            }
            os << ")";
            return;
        }
    }

    const Design& d_;
};

} // namespace

std::string
print_action(const Action* a, const Design* design)
{
    static Design dummy("(printer)");
    Printer p(design != nullptr ? *design : dummy);
    return p.action_line(a);
}

std::string
print_design(const Design& d)
{
    return Printer(d).design();
}

std::string
format_value(const TypePtr& type, const Bits& value)
{
    if (type->is_enum()) {
        for (const EnumMember& m : type->members)
            if (m.value == value)
                return type->name + "::" + m.name;
        return "(" + type->name + ")" + value.str();
    }
    if (type->is_struct()) {
        std::string out = type->name + "{";
        for (size_t i = 0; i < type->fields.size(); ++i) {
            const Field& f = type->fields[i];
            if (i)
                out += ", ";
            out += f.name + " = " +
                   format_value(f.type,
                                value.slice(f.offset, f.type->width));
        }
        return out + "}";
    }
    return value.str();
}

size_t
design_sloc(const Design& d)
{
    std::string text = print_design(d);
    size_t lines = 0;
    bool nonblank = false;
    for (char c : text) {
        if (c == '\n') {
            if (nonblank)
                ++lines;
            nonblank = false;
        } else if (c != ' ') {
            nonblank = true;
        }
    }
    return lines;
}

} // namespace koika
