/**
 * @file
 * The Kôika action AST.
 *
 * Kôika is an expression language: every action produces a value (unit
 * for writes and guards) and may additionally read or write registers or
 * abort the enclosing rule. The AST below covers the full language of the
 * paper (§2.1): conditionals, variable bindings, sequencing, combinational
 * functions, the read/write port primitives, and abort/guard.
 *
 * Nodes are owned by their Design's arena and carry a dense id so that
 * analyses can attach information in side tables (src/analysis).
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "koika/types.hpp"

namespace koika {

/** Read/write port (paper §2.1): port 0 or port 1. */
enum class Port : uint8_t { p0 = 0, p1 = 1 };

/** Pure operator applied by kUnop/kBinop nodes. */
enum class Op : uint8_t {
    // Unary.
    kNot, kNeg, kZExtL, kSExtL, kSlice,
    // Binary bitwise / arithmetic.
    kAnd, kOr, kXor, kAdd, kSub, kMul,
    // Binary comparisons (1-bit result).
    kEq, kNe, kLtu, kLeu, kGtu, kGeu, kLts, kLes, kGts, kGes,
    // Shifts.
    kLsl, kLsr, kAsr,
    // Structural.
    kConcat,
};

const char* op_name(Op op);

struct Action;
struct FunctionDef;

/** Kinds of AST nodes. */
enum class ActionKind : uint8_t {
    kConst,      ///< Literal value.
    kVar,        ///< Reference to a let-bound variable.
    kLet,        ///< Bind a variable for the scope of a body.
    kAssign,     ///< Update a let-bound variable (Kôika's `set`).
    kSeq,        ///< Sequence two actions, discarding the first value.
    kIf,         ///< Conditional expression.
    kRead,       ///< Register read at port 0 or 1.
    kWrite,      ///< Register write at port 0 or 1.
    kGuard,      ///< Abort the rule unless the 1-bit operand is set.
    kUnop,       ///< Pure unary operator.
    kBinop,      ///< Pure binary operator.
    kGetField,   ///< Struct field projection.
    kSubstField, ///< Functional struct field update.
    kCall,       ///< Call of a combinational internal function.
};

const char* action_kind_name(ActionKind kind);

struct Action
{
    ActionKind kind;
    /** Dense per-design node id, assigned by the arena. */
    int id = -1;
    /** Result type; filled in by the typechecker. */
    TypePtr type;

    // -- kConst ----------------------------------------------------------
    Bits value;
    /** Declared type of the literal (enum constants carry their enum). */
    TypePtr const_type;

    // -- kVar / kLet / kAssign --------------------------------------------
    std::string var;
    /** Variable slot in the rule's evaluation frame (typechecker). */
    int slot = -1;

    // -- Children ----------------------------------------------------------
    // kLet: a0 = bound value, a1 = body.          kSeq: a0, a1.
    // kIf: a0 = cond, a1 = then, a2 = else.       kWrite/kGuard/kAssign: a0.
    // kUnop: a0.  kBinop: a0, a1.  kGetField: a0. kSubstField: a0, a1.
    Action* a0 = nullptr;
    Action* a1 = nullptr;
    Action* a2 = nullptr;

    // -- kRead / kWrite ----------------------------------------------------
    int reg = -1;
    Port port = Port::p0;

    // -- kUnop / kBinop ----------------------------------------------------
    Op op = Op::kNot;
    /** Slice offset / zextl-sextl target width. */
    uint32_t imm0 = 0;
    /** Slice width. */
    uint32_t imm1 = 0;

    // -- kGetField / kSubstField -------------------------------------------
    std::string field;
    int field_index = -1;

    // -- kCall --------------------------------------------------------------
    const FunctionDef* fn = nullptr;
    std::vector<Action*> args;
};

/**
 * A combinational internal function: pure (no reads, writes, or guards),
 * checked by the typechecker. Calls are evaluated with their own frame.
 */
struct FunctionDef
{
    std::string name;
    std::vector<std::pair<std::string, TypePtr>> params;
    TypePtr ret;
    Action* body = nullptr;
    /** Evaluation frame size (typechecker). */
    int nslots = 0;
};

} // namespace koika
