/**
 * @file
 * A Design: the unit of compilation and simulation.
 *
 * A design owns its registers (the architectural state), its rules, its
 * scheduler (a linear order in which rules appear to execute, §2.1), and
 * the arena of AST nodes and function definitions that the rules use.
 */
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "koika/ast.hpp"

namespace koika {

/** A hardware state element. */
struct RegInfo
{
    std::string name;
    TypePtr type;
    /** Reset value (width matches type->width). */
    Bits init;
};

/** A named atomic rule. */
struct Rule
{
    std::string name;
    Action* body = nullptr;
    /** Evaluation frame size (typechecker). */
    int nslots = 0;
};

class Design
{
  public:
    explicit Design(std::string name) : name_(std::move(name)) {}

    Design(const Design&) = delete;
    Design& operator=(const Design&) = delete;

    const std::string& name() const { return name_; }

    /** Declare a register; returns its index. */
    int add_register(const std::string& name, TypePtr type, Bits init);
    /** Declare a rule; returns its index. Not yet scheduled. */
    int add_rule(const std::string& name, Action* body);
    /** Append a rule to the linear schedule. */
    void schedule(int rule_index);
    /** Append a rule to the schedule by name. */
    void schedule(const std::string& rule_name);

    /** Allocate an AST node in the design's arena. */
    Action* alloc(ActionKind kind);
    /** Allocate a function definition. */
    FunctionDef* alloc_function();

    size_t num_registers() const { return regs_.size(); }
    size_t num_rules() const { return rules_.size(); }
    size_t num_nodes() const { return arena_.size(); }

    const RegInfo& reg(int i) const { return regs_[(size_t)i]; }
    const Rule& rule(int i) const { return rules_[(size_t)i]; }
    Rule& rule_mut(int i) { return rules_[(size_t)i]; }
    const std::vector<int>& schedule_order() const { return schedule_; }
    const std::vector<std::unique_ptr<FunctionDef>>& functions() const
    {
        return functions_;
    }

    /** Register index by name, or -1. */
    int reg_index(const std::string& name) const;
    /** Rule index by name, or -1. */
    int rule_index(const std::string& name) const;

    /** Reset values of all registers, in index order. */
    std::vector<Bits> initial_state() const;

    /** Set by the typechecker once the whole design checks. */
    bool typechecked = false;

  private:
    std::string name_;
    std::vector<RegInfo> regs_;
    std::vector<Rule> rules_;
    std::vector<int> schedule_;
    std::map<std::string, int> reg_by_name_;
    std::map<std::string, int> rule_by_name_;
    std::vector<std::unique_ptr<Action>> arena_;
    std::vector<std::unique_ptr<FunctionDef>> functions_;
};

} // namespace koika
