/**
 * @file
 * Pretty-printer for Kôika designs.
 *
 * Produces Kôika-flavored concrete syntax. Used for debugging, for golden
 * tests, and as the "Kôika SLOC" measurement of Table 1 (the designs in
 * this repo are built through the C++ EDSL, so the printed form is the
 * canonical source-level representation).
 */
#pragma once

#include <string>

#include "koika/design.hpp"

namespace koika {

/**
 * Render one action as a single-line expression. Pass the owning design
 * to resolve register names (otherwise registers print as r<index>).
 */
std::string print_action(const Action* a, const Design* design = nullptr);

/** Render a whole design (registers, functions, rules, scheduler). */
std::string print_design(const Design& d);

/** Source lines of the printed design (Table 1's Kôika SLOC proxy). */
size_t design_sloc(const Design& d);

/**
 * Render a value with its type's interpretation: enum members print
 * symbolically ("state::A"), structs field by field — the experience
 * case study 1 gets from gdb on generated models, available on any
 * engine through the committed-state interface.
 */
std::string format_value(const TypePtr& type, const Bits& value);

} // namespace koika
