#include "koika/builder.hpp"

namespace koika {

int
Builder::reg(const std::string& name, TypePtr type, Bits init)
{
    return d_.add_register(name, std::move(type), std::move(init));
}

int
Builder::reg(const std::string& name, uint32_t width, uint64_t init)
{
    return d_.add_register(name, bits_type(width), Bits::of(width, init));
}

std::vector<int>
Builder::reg_array(const std::string& name, size_t n, TypePtr type,
                   Bits init)
{
    std::vector<int> regs;
    regs.reserve(n);
    for (size_t i = 0; i < n; ++i)
        regs.push_back(d_.add_register(name + std::to_string(i), type, init));
    return regs;
}

Action*
Builder::k(uint32_t width, uint64_t v)
{
    return konst(Bits::of(width, v));
}

Action*
Builder::konst(Bits v)
{
    Action* a = d_.alloc(ActionKind::kConst);
    a->const_type = bits_type(v.width());
    a->value = std::move(v);
    return a;
}

Action*
Builder::konst_typed(TypePtr type, Bits v)
{
    KOIKA_CHECK(type->width == v.width());
    Action* a = d_.alloc(ActionKind::kConst);
    a->const_type = std::move(type);
    a->value = std::move(v);
    return a;
}

Action*
Builder::enum_k(TypePtr enum_type, const std::string& member)
{
    int idx = enum_type->member_index(member);
    if (idx < 0)
        fatal("enum %s has no member '%s'", enum_type->name.c_str(),
              member.c_str());
    return konst_typed(enum_type, enum_type->members[(size_t)idx].value);
}

Action*
Builder::unit()
{
    return k(0, 0);
}

Action*
Builder::var(const std::string& name)
{
    Action* a = d_.alloc(ActionKind::kVar);
    a->var = name;
    return a;
}

Action*
Builder::let(const std::string& name, Action* value, Action* body)
{
    Action* a = d_.alloc(ActionKind::kLet);
    a->var = name;
    a->a0 = value;
    a->a1 = body;
    return a;
}

Action*
Builder::assign(const std::string& name, Action* value)
{
    Action* a = d_.alloc(ActionKind::kAssign);
    a->var = name;
    a->a0 = value;
    return a;
}

Action*
Builder::seq(std::vector<Action*> actions)
{
    KOIKA_CHECK(!actions.empty());
    Action* acc = actions.back();
    for (size_t i = actions.size() - 1; i-- > 0;) {
        Action* s = d_.alloc(ActionKind::kSeq);
        s->a0 = actions[i];
        s->a1 = acc;
        acc = s;
    }
    return acc;
}

Action*
Builder::if_(Action* cond, Action* then_a, Action* else_a)
{
    Action* a = d_.alloc(ActionKind::kIf);
    a->a0 = cond;
    a->a1 = then_a;
    a->a2 = else_a != nullptr ? else_a : unit();
    return a;
}

Action*
Builder::guard(Action* cond)
{
    Action* a = d_.alloc(ActionKind::kGuard);
    a->a0 = cond;
    return a;
}

Action*
Builder::abort()
{
    return guard(k(1, 0));
}

Action*
Builder::read0(int reg)
{
    Action* a = d_.alloc(ActionKind::kRead);
    a->reg = reg;
    a->port = Port::p0;
    return a;
}

Action*
Builder::read1(int reg)
{
    Action* a = d_.alloc(ActionKind::kRead);
    a->reg = reg;
    a->port = Port::p1;
    return a;
}

Action*
Builder::write0(int reg, Action* value)
{
    Action* a = d_.alloc(ActionKind::kWrite);
    a->reg = reg;
    a->port = Port::p0;
    a->a0 = value;
    return a;
}

Action*
Builder::write1(int reg, Action* value)
{
    Action* a = d_.alloc(ActionKind::kWrite);
    a->reg = reg;
    a->port = Port::p1;
    a->a0 = value;
    return a;
}

Action*
Builder::unop(Op op, Action* a0)
{
    Action* a = d_.alloc(ActionKind::kUnop);
    a->op = op;
    a->a0 = a0;
    return a;
}

Action*
Builder::binop(Op op, Action* a0, Action* a1)
{
    Action* a = d_.alloc(ActionKind::kBinop);
    a->op = op;
    a->a0 = a0;
    a->a1 = a1;
    return a;
}

Action*
Builder::zextl(Action* a0, uint32_t width)
{
    Action* a = unop(Op::kZExtL, a0);
    a->imm0 = width;
    return a;
}

Action*
Builder::sextl(Action* a0, uint32_t width)
{
    Action* a = unop(Op::kSExtL, a0);
    a->imm0 = width;
    return a;
}

Action*
Builder::slice(Action* a0, uint32_t offset, uint32_t width)
{
    Action* a = unop(Op::kSlice, a0);
    a->imm0 = offset;
    a->imm1 = width;
    return a;
}

Action*
Builder::get(Action* a0, const std::string& field)
{
    Action* a = d_.alloc(ActionKind::kGetField);
    a->a0 = a0;
    a->field = field;
    return a;
}

Action*
Builder::subst(Action* a0, const std::string& field, Action* value)
{
    Action* a = d_.alloc(ActionKind::kSubstField);
    a->a0 = a0;
    a->a1 = value;
    a->field = field;
    return a;
}

Action*
Builder::struct_init(TypePtr type,
                     std::vector<std::pair<std::string, Action*>> fields)
{
    KOIKA_CHECK(type->is_struct());
    Action* acc = konst_typed(type, Bits::zeroes(type->width));
    for (auto& [fname, fval] : fields)
        acc = subst(acc, fname, fval);
    return acc;
}

FunctionDef*
Builder::fn(const std::string& name,
            std::vector<std::pair<std::string, TypePtr>> params, TypePtr ret,
            Action* body)
{
    FunctionDef* f = d_.alloc_function();
    f->name = name;
    f->params = std::move(params);
    f->ret = std::move(ret);
    f->body = body;
    return f;
}

Action*
Builder::call(const FunctionDef* fn, std::vector<Action*> args)
{
    Action* a = d_.alloc(ActionKind::kCall);
    a->fn = fn;
    a->args = std::move(args);
    return a;
}

Action*
Builder::mux_read(const std::vector<int>& regs, Action* idx, Port port)
{
    KOIKA_CHECK(!regs.empty());
    uint32_t iw = 1;
    while ((size_t{1} << iw) < regs.size())
        ++iw;
    // Chain of muxes: if (idx == i) read(regs[i]) else ...
    Action* acc = read(regs.back(), port);
    for (size_t i = regs.size() - 1; i-- > 0;) {
        Action* cond = eq(clone(idx), k(iw, i));
        acc = if_(cond, read(regs[i], port), acc);
    }
    return acc;
}

Action*
Builder::mux_write(const std::vector<int>& regs, Action* idx, Action* value,
                   Port port)
{
    KOIKA_CHECK(!regs.empty());
    uint32_t iw = 1;
    while ((size_t{1} << iw) < regs.size())
        ++iw;
    std::vector<Action*> writes;
    for (size_t i = 0; i < regs.size(); ++i) {
        Action* cond = eq(clone(idx), k(iw, i));
        writes.push_back(when(cond, write(regs[i], port, clone(value))));
    }
    return seq(std::move(writes));
}

Action*
Builder::clone(const Action* a)
{
    if (a == nullptr)
        return nullptr;
    Action* c = d_.alloc(a->kind);
    c->value = a->value;
    c->const_type = a->const_type;
    c->var = a->var;
    c->a0 = clone(a->a0);
    c->a1 = clone(a->a1);
    c->a2 = clone(a->a2);
    c->reg = a->reg;
    c->port = a->port;
    c->op = a->op;
    c->imm0 = a->imm0;
    c->imm1 = a->imm1;
    c->field = a->field;
    c->fn = a->fn;
    for (const Action* arg : a->args)
        c->args.push_back(clone(arg));
    return c;
}

} // namespace koika
