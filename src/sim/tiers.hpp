/**
 * @file
 * The Cuttlesim optimization tiers (paper §3.2-3.3).
 *
 * Each tier is a complete simulation engine for a Kôika design. The tiers
 * form the refinement sequence the paper describes, so benchmarking them
 * against each other reproduces the per-optimization ablation:
 *
 *   T0 naive           - beginning-of-cycle state + rule log + cycle log,
 *                        read-write sets interleaved with data (§3.1).
 *   T1 split sets      - read-write bitsets stored apart from data, so
 *                        resets are bulk zeroing.
 *   T2 accumulate      - accumulated rule log (L ++ l): single-log write
 *                        checks, commits become plain copies.
 *   T3 reset-on-fail   - no reset on rule entry; failures restore the
 *                        accumulated log from the cycle log.
 *   T4 merged data     - one data field per register and no separate
 *                        beginning-of-cycle state (mid-cycle snapshots
 *                        fall out for free).
 *   T5 static analysis - minimized read-write sets, no tracking for safe
 *                        registers, footprint-restricted commit/rollback,
 *                        rollback-free early failures.
 *
 * All tiers share one expression evaluator; only the transaction policy
 * differs, which is exactly the paper's framing.
 */
#pragma once

#include <memory>
#include <string>

#include "koika/design.hpp"
#include "sim/model.hpp"

namespace koika::sim {

enum class Tier : int {
    kT0Naive = 0,
    kT1SplitSets = 1,
    kT2Accumulate = 2,
    kT3ResetOnFail = 3,
    kT4MergedData = 4,
    kT5StaticAnalysis = 5,
};

constexpr int kNumTiers = 6;

const char* tier_name(Tier tier);

/**
 * Extended interface offered by tier engines (rule-level control).
 * Per-rule activity counters (fired set, commit/abort counts, abort
 * reasons) come from RuleStatsModel, which tier engines always
 * implement — the interpreter pays nothing measurable for them.
 */
class TierModel : public RuleStatsModel, public CoverageModel
{
  public:
    /**
     * Run one cycle with an explicit rule order (case study 2). Tiers
     * T0-T4 are schedule-independent and support any order; T5 is
     * specialized to the design's schedule and rejects custom orders.
     */
    virtual void cycle_with_order(const std::vector<int>& order) = 0;

    // -- Mid-cycle stepping (§3.2: merged data "even allows mid-cycle
    // snapshots"; case study 1 stops halfway through a cycle to print
    // the intermediate state produced by the rules run so far).
    /** Open a cycle for manual rule-by-rule stepping. */
    virtual void begin_step_cycle() = 0;
    /** Run one rule inside the open cycle; true iff it committed. */
    virtual bool step_rule(int rule) = 0;
    /** Close the manually stepped cycle. */
    virtual void end_step_cycle() = 0;
    /**
     * Register value as committed *so far* within the open cycle (the
     * mid-cycle snapshot).
     */
    virtual Bits get_mid_reg(int reg) const = 0;
};

/**
 * Build a tier engine for a typechecked design. T5 runs the static
 * analysis internally.
 */
std::unique_ptr<TierModel> make_engine(const Design& design, Tier tier);

} // namespace koika::sim
