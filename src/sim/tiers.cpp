#include "sim/tiers.hpp"

#include <cstring>

#include "analysis/analysis.hpp"
#include "base/error.hpp"
#include "sim/state.hpp"

namespace koika::sim {

const char*
tier_name(Tier tier)
{
    switch (tier) {
      case Tier::kT0Naive: return "T0-naive";
      case Tier::kT1SplitSets: return "T1-split-sets";
      case Tier::kT2Accumulate: return "T2-accumulate";
      case Tier::kT3ResetOnFail: return "T3-reset-on-fail";
      case Tier::kT4MergedData: return "T4-merged-data";
      case Tier::kT5StaticAnalysis: return "T5-static-analysis";
    }
    return "?";
}

namespace {

// Read-write set bits (one byte per register in the split-set tiers).
constexpr uint8_t kRd0 = 1;
constexpr uint8_t kRd1 = 2;
constexpr uint8_t kWr0 = 4;
constexpr uint8_t kWr1 = 8;
constexpr uint8_t kWrAny = kWr0 | kWr1;

// ---------------------------------------------------------------------------
// T0: the naive model of §3.1. Read-write sets interleaved with data in
// one structure per register; separate beginning-of-cycle state.
// ---------------------------------------------------------------------------
class PolicyT0
{
  public:
    static constexpr bool kScheduleSpecialized = false;

    explicit PolicyT0(const Design& d)
        : state_(d.initial_state()), cycle_(d.num_registers()),
          rule_(d.num_registers())
    {
    }

    void
    begin_cycle()
    {
        // Clearing interleaved logs walks every entry (the cost this
        // representation pays; §3.2 "Separate read-write sets and data").
        for (Entry& e : cycle_)
            e.clear_flags();
    }

    void
    begin_rule(int)
    {
        for (Entry& e : rule_)
            e.clear_flags();
    }

    bool
    read(const Action* a, Bits& out)
    {
        Entry& cl = cycle_[(size_t)a->reg];
        Entry& rl = rule_[(size_t)a->reg];
        if (a->port == Port::p0) {
            if (cl.wr0 || cl.wr1)
                return false;
            rl.rd0 = true;
            out = state_[(size_t)a->reg];
        } else {
            if (cl.wr1)
                return false;
            rl.rd1 = true;
            out = rl.wr0 ? rl.data0
                         : cl.wr0 ? cl.data0 : state_[(size_t)a->reg];
        }
        return true;
    }

    bool
    write(const Action* a, const Bits& v)
    {
        Entry& cl = cycle_[(size_t)a->reg];
        Entry& rl = rule_[(size_t)a->reg];
        if (a->port == Port::p0) {
            if (cl.rd1 || cl.wr0 || cl.wr1 || rl.rd1 || rl.wr0 || rl.wr1)
                return false;
            rl.wr0 = true;
            rl.data0 = v;
        } else {
            if (cl.wr1 || rl.wr1)
                return false;
            rl.wr1 = true;
            rl.data1 = v;
        }
        return true;
    }

    void
    commit_rule(int)
    {
        for (size_t i = 0; i < cycle_.size(); ++i) {
            Entry& cl = cycle_[i];
            const Entry& rl = rule_[i];
            cl.rd0 |= rl.rd0;
            cl.rd1 |= rl.rd1;
            if (rl.wr0) {
                cl.wr0 = true;
                cl.data0 = rl.data0;
            }
            if (rl.wr1) {
                cl.wr1 = true;
                cl.data1 = rl.data1;
            }
        }
    }

    void
    fail_rule(int, const Action*)
    {
    }

    void
    end_cycle()
    {
        for (size_t i = 0; i < cycle_.size(); ++i) {
            if (cycle_[i].wr1)
                state_[i] = cycle_[i].data1;
            else if (cycle_[i].wr0)
                state_[i] = cycle_[i].data0;
        }
    }

    Bits get_committed(int r) const { return state_[(size_t)r]; }
    void set_committed(int r, const Bits& v) { state_[(size_t)r] = v; }

    Bits
    get_intermediate(int r) const
    {
        const Entry& e = cycle_[(size_t)r];
        return e.wr1 ? e.data1 : e.wr0 ? e.data0 : state_[(size_t)r];
    }

  private:
    struct Entry
    {
        bool rd0 = false, rd1 = false, wr0 = false, wr1 = false;
        Bits data0, data1;

        void
        clear_flags()
        {
            rd0 = rd1 = wr0 = wr1 = false;
        }
    };

    std::vector<Bits> state_;
    std::vector<Entry> cycle_, rule_;
};

// ---------------------------------------------------------------------------
// T1: split read-write sets from data; resets become bulk zeroing.
// ---------------------------------------------------------------------------
class PolicyT1
{
  public:
    static constexpr bool kScheduleSpecialized = false;

    explicit PolicyT1(const Design& d)
        : state_(d.initial_state()), n_(d.num_registers()),
          cycle_flags_(n_, 0), rule_flags_(n_, 0), cycle_data0_(n_),
          cycle_data1_(n_), rule_data0_(n_), rule_data1_(n_)
    {
    }

    void
    begin_cycle()
    {
        std::memset(cycle_flags_.data(), 0, n_);
    }

    void
    begin_rule(int)
    {
        std::memset(rule_flags_.data(), 0, n_);
    }

    bool
    read(const Action* a, Bits& out)
    {
        size_t r = (size_t)a->reg;
        if (a->port == Port::p0) {
            if (cycle_flags_[r] & kWrAny)
                return false;
            rule_flags_[r] |= kRd0;
            out = state_[r];
        } else {
            if (cycle_flags_[r] & kWr1)
                return false;
            rule_flags_[r] |= kRd1;
            out = (rule_flags_[r] & kWr0)
                      ? rule_data0_[r]
                      : (cycle_flags_[r] & kWr0) ? cycle_data0_[r]
                                                 : state_[r];
        }
        return true;
    }

    bool
    write(const Action* a, const Bits& v)
    {
        size_t r = (size_t)a->reg;
        if (a->port == Port::p0) {
            if ((cycle_flags_[r] | rule_flags_[r]) & (kRd1 | kWr0 | kWr1))
                return false;
            rule_flags_[r] |= kWr0;
            rule_data0_[r] = v;
        } else {
            if ((cycle_flags_[r] | rule_flags_[r]) & kWr1)
                return false;
            rule_flags_[r] |= kWr1;
            rule_data1_[r] = v;
        }
        return true;
    }

    void
    commit_rule(int)
    {
        for (size_t r = 0; r < n_; ++r) {
            uint8_t rf = rule_flags_[r];
            cycle_flags_[r] |= rf;
            if (rf & kWr0)
                cycle_data0_[r] = rule_data0_[r];
            if (rf & kWr1)
                cycle_data1_[r] = rule_data1_[r];
        }
    }

    void
    fail_rule(int, const Action*)
    {
    }

    void
    end_cycle()
    {
        for (size_t r = 0; r < n_; ++r) {
            if (cycle_flags_[r] & kWr1)
                state_[r] = cycle_data1_[r];
            else if (cycle_flags_[r] & kWr0)
                state_[r] = cycle_data0_[r];
        }
    }

    Bits get_committed(int r) const { return state_[(size_t)r]; }
    void set_committed(int r, const Bits& v) { state_[(size_t)r] = v; }

    Bits
    get_intermediate(int r) const
    {
        uint8_t f = cycle_flags_[(size_t)r];
        return (f & kWr1) ? cycle_data1_[(size_t)r]
               : (f & kWr0) ? cycle_data0_[(size_t)r]
                            : state_[(size_t)r];
    }

  private:
    std::vector<Bits> state_;
    size_t n_;
    std::vector<uint8_t> cycle_flags_, rule_flags_;
    std::vector<Bits> cycle_data0_, cycle_data1_, rule_data0_, rule_data1_;
};

// ---------------------------------------------------------------------------
// T2/T3: accumulated rule log L ++ l. Writes check a single log; rule
// commits are plain copies. T2 resets the accumulated log on every rule
// entry; T3 maintains the invariant acc == cycle at rule boundaries and
// only restores on failure (§3.2 "Reset on failure, not on entry").
// ---------------------------------------------------------------------------
template <bool kResetOnFail>
class PolicyT23
{
  public:
    static constexpr bool kScheduleSpecialized = false;

    explicit PolicyT23(const Design& d)
        : state_(d.initial_state()), n_(d.num_registers()),
          cycle_flags_(n_, 0), acc_flags_(n_, 0), cycle_data0_(n_),
          cycle_data1_(n_), acc_data0_(n_), acc_data1_(n_)
    {
    }

    void
    begin_cycle()
    {
        std::memset(cycle_flags_.data(), 0, n_);
        if (kResetOnFail)
            std::memset(acc_flags_.data(), 0, n_);
    }

    void
    begin_rule(int)
    {
        if (!kResetOnFail)
            restore_acc();
    }

    bool
    read(const Action* a, Bits& out)
    {
        size_t r = (size_t)a->reg;
        if (a->port == Port::p0) {
            // rd0 still checks the *cycle* log only (an intra-rule wr0
            // does not forbid rd0; cf. the Goldbergian example).
            if (cycle_flags_[r] & kWrAny)
                return false;
            acc_flags_[r] |= kRd0;
            out = state_[r];
        } else {
            if (cycle_flags_[r] & kWr1)
                return false;
            acc_flags_[r] |= kRd1;
            out = (acc_flags_[r] & kWr0) ? acc_data0_[r] : state_[r];
        }
        return true;
    }

    bool
    write(const Action* a, const Bits& v)
    {
        size_t r = (size_t)a->reg;
        if (a->port == Port::p0) {
            // Single-log check: acc already contains the cycle log.
            if (acc_flags_[r] & (kRd1 | kWr0 | kWr1))
                return false;
            acc_flags_[r] |= kWr0;
            acc_data0_[r] = v;
        } else {
            if (acc_flags_[r] & kWr1)
                return false;
            acc_flags_[r] |= kWr1;
            acc_data1_[r] = v;
        }
        return true;
    }

    void
    commit_rule(int)
    {
        cycle_flags_ = acc_flags_;
        cycle_data0_ = acc_data0_;
        cycle_data1_ = acc_data1_;
    }

    void
    fail_rule(int, const Action*)
    {
        if (kResetOnFail)
            restore_acc();
    }

    void
    end_cycle()
    {
        for (size_t r = 0; r < n_; ++r) {
            if (cycle_flags_[r] & kWr1)
                state_[r] = cycle_data1_[r];
            else if (cycle_flags_[r] & kWr0)
                state_[r] = cycle_data0_[r];
        }
    }

    Bits get_committed(int r) const { return state_[(size_t)r]; }
    void set_committed(int r, const Bits& v) { state_[(size_t)r] = v; }

    Bits
    get_intermediate(int r) const
    {
        uint8_t f = cycle_flags_[(size_t)r];
        return (f & kWr1) ? cycle_data1_[(size_t)r]
               : (f & kWr0) ? cycle_data0_[(size_t)r]
                            : state_[(size_t)r];
    }

  private:
    void
    restore_acc()
    {
        acc_flags_ = cycle_flags_;
        acc_data0_ = cycle_data0_;
        acc_data1_ = cycle_data1_;
    }

    std::vector<Bits> state_;
    size_t n_;
    std::vector<uint8_t> cycle_flags_, acc_flags_;
    std::vector<Bits> cycle_data0_, cycle_data1_, acc_data0_, acc_data1_;
};

// ---------------------------------------------------------------------------
// T4: merged data0/data1 and no separate beginning-of-cycle state. The
// cycle log's data doubles as the architectural state; the accumulated
// log's data is always valid for rd1.
// ---------------------------------------------------------------------------
class PolicyT4
{
  public:
    static constexpr bool kScheduleSpecialized = false;

    explicit PolicyT4(const Design& d)
        : n_(d.num_registers()), cycle_flags_(n_, 0), acc_flags_(n_, 0),
          cycle_data_(d.initial_state()), acc_data_(d.initial_state())
    {
    }

    void
    begin_cycle()
    {
        std::memset(cycle_flags_.data(), 0, n_);
        std::memset(acc_flags_.data(), 0, n_);
    }

    void begin_rule(int) {}

    bool
    read(const Action* a, Bits& out)
    {
        size_t r = (size_t)a->reg;
        if (a->port == Port::p0) {
            // Legal rd0 implies no committed write yet, so the cycle
            // log's data still holds the beginning-of-cycle value.
            if (cycle_flags_[r] & kWrAny)
                return false;
            acc_flags_[r] |= kRd0;
            out = cycle_data_[r];
        } else {
            if (cycle_flags_[r] & kWr1)
                return false;
            acc_flags_[r] |= kRd1;
            out = acc_data_[r];
        }
        return true;
    }

    bool
    write(const Action* a, const Bits& v)
    {
        size_t r = (size_t)a->reg;
        if (a->port == Port::p0) {
            if (acc_flags_[r] & (kRd1 | kWr0 | kWr1))
                return false;
            acc_flags_[r] |= kWr0;
        } else {
            if (acc_flags_[r] & kWr1)
                return false;
            acc_flags_[r] |= kWr1;
        }
        acc_data_[r] = v;
        return true;
    }

    void
    commit_rule(int)
    {
        cycle_flags_ = acc_flags_;
        cycle_data_ = acc_data_;
    }

    void
    fail_rule(int, const Action*)
    {
        acc_flags_ = cycle_flags_;
        acc_data_ = cycle_data_;
    }

    void
    end_cycle()
    {
        // Nothing: the cycle log's data *is* the committed state.
    }

    Bits get_committed(int r) const { return cycle_data_[(size_t)r]; }

    void
    set_committed(int r, const Bits& v)
    {
        cycle_data_[(size_t)r] = v;
        acc_data_[(size_t)r] = v;
    }

    // Merged data + no separate state: mid-cycle snapshots are free
    // (§3.2) — the cycle log's data is the intermediate state.
    Bits get_intermediate(int r) const { return cycle_data_[(size_t)r]; }

  private:
    size_t n_;
    std::vector<uint8_t> cycle_flags_, acc_flags_;
    std::vector<Bits> cycle_data_, acc_data_;
};

// ---------------------------------------------------------------------------
// T5: T4 plus every design-specific optimization of §3.3 - checks elided
// where the abstract interpretation proves them redundant, no tracking
// for safe registers, footprint-restricted commit/rollback (falling back
// to whole-log copies for wide rules), and rollback-free early failures.
// ---------------------------------------------------------------------------
class PolicyT5
{
  public:
    static constexpr bool kScheduleSpecialized = true;

    PolicyT5(const Design& d, analysis::DesignAnalysis an)
        : an_(std::move(an)), n_(d.num_registers()), cycle_flags_(n_, 0),
          acc_flags_(n_, 0), cycle_data_(d.initial_state()),
          acc_data_(d.initial_state())
    {
        for (size_t r = 0; r < n_; ++r)
            if (!an_.reg_safe[r])
                tracked_.push_back((int)r);
        // Per-rule commit/rollback plans.
        size_t nrules = d.num_rules();
        fp_flags_.resize(nrules);
        fp_data_.resize(nrules);
        full_copy_.resize(nrules, false);
        for (size_t ru = 0; ru < nrules; ++ru) {
            const auto& summary = an_.rules[ru];
            for (int r : summary.footprint_tracked)
                if (!an_.reg_safe[(size_t)r])
                    fp_flags_[ru].push_back(r);
            fp_data_[ru] = summary.footprint_writes;
            // §3.3: if a rule touches most of the registers, one bulk
            // copy beats many field copies.
            full_copy_[ru] = fp_data_[ru].size() * 2 > n_;
        }
    }

    void
    begin_cycle()
    {
        for (int r : tracked_) {
            cycle_flags_[(size_t)r] = 0;
            acc_flags_[(size_t)r] = 0;
        }
    }

    void begin_rule(int) {}

    bool
    read(const Action* a, Bits& out)
    {
        size_t r = (size_t)a->reg;
        const analysis::OpInfo& op = an_.ops[(size_t)a->id];
        if (a->port == Port::p0) {
            if (op.may_fail && (cycle_flags_[r] & kWrAny))
                return false;
            // rd0 marks are never consulted: tracking removed (§3.3
            // "Minimize read-write sets").
            out = cycle_data_[r];
        } else {
            if (op.may_fail && (cycle_flags_[r] & kWr1))
                return false;
            if (!an_.reg_safe[r])
                acc_flags_[r] |= kRd1;
            out = acc_data_[r];
        }
        return true;
    }

    bool
    write(const Action* a, const Bits& v)
    {
        size_t r = (size_t)a->reg;
        const analysis::OpInfo& op = an_.ops[(size_t)a->id];
        if (a->port == Port::p0) {
            if (op.may_fail && (acc_flags_[r] & (kRd1 | kWr0 | kWr1)))
                return false;
            if (!an_.reg_safe[r])
                acc_flags_[r] |= kWr0;
        } else {
            if (op.may_fail && (acc_flags_[r] & kWr1))
                return false;
            if (!an_.reg_safe[r])
                acc_flags_[r] |= kWr1;
        }
        acc_data_[r] = v;
        return true;
    }

    void
    commit_rule(int rule)
    {
        if (full_copy_[(size_t)rule]) {
            cycle_flags_ = acc_flags_;
            cycle_data_ = acc_data_;
            return;
        }
        for (int r : fp_flags_[(size_t)rule])
            cycle_flags_[(size_t)r] = acc_flags_[(size_t)r];
        for (int r : fp_data_[(size_t)rule])
            cycle_data_[(size_t)r] = acc_data_[(size_t)r];
    }

    void
    fail_rule(int rule, const Action* fail_point)
    {
        // Early failures with a pristine log exit without rollback.
        if (fail_point != nullptr &&
            an_.ops[(size_t)fail_point->id].clean_at_fail)
            return;
        if (full_copy_[(size_t)rule]) {
            acc_flags_ = cycle_flags_;
            acc_data_ = cycle_data_;
            return;
        }
        for (int r : fp_flags_[(size_t)rule])
            acc_flags_[(size_t)r] = cycle_flags_[(size_t)r];
        for (int r : fp_data_[(size_t)rule])
            acc_data_[(size_t)r] = cycle_data_[(size_t)r];
    }

    void end_cycle() {}

    Bits get_committed(int r) const { return cycle_data_[(size_t)r]; }

    void
    set_committed(int r, const Bits& v)
    {
        cycle_data_[(size_t)r] = v;
        acc_data_[(size_t)r] = v;
    }

    Bits get_intermediate(int r) const { return cycle_data_[(size_t)r]; }

  private:
    analysis::DesignAnalysis an_;
    size_t n_;
    std::vector<uint8_t> cycle_flags_, acc_flags_;
    std::vector<Bits> cycle_data_, acc_data_;
    std::vector<int> tracked_;
    std::vector<std::vector<int>> fp_flags_, fp_data_;
    std::vector<bool> full_copy_;
};

// ---------------------------------------------------------------------------
// The shared expression evaluator, templated on the transaction policy.
// ---------------------------------------------------------------------------
template <typename Policy>
class TierEngine final : public TierModel, public CheckpointableModel
{
  public:
    TierEngine(const Design& d, Policy policy)
        : d_(d), p_(std::move(policy)), fired_(d.num_rules(), false),
          commits_(d.num_rules(), 0), aborts_(d.num_rules(), 0),
          reasons_(d.num_rules() * (size_t)kNumAbortReasons, 0)
    {
        KOIKA_CHECK(d.typechecked);
    }

    void
    cycle() override
    {
        run(d_.schedule_order());
    }

    void
    cycle_with_order(const std::vector<int>& order) override
    {
        if (Policy::kScheduleSpecialized)
            fatal("this engine tier is specialized to the design's "
                  "schedule and cannot run custom rule orders");
        run(order);
    }

    Bits get_reg(int r) const override { return p_.get_committed(r); }

    void
    set_reg(int r, const Bits& v) override
    {
        KOIKA_CHECK(v.width() == d_.reg(r).type->width);
        p_.set_committed(r, v);
    }

    uint64_t cycles_run() const override { return cycles_; }
    size_t num_regs() const override { return d_.num_registers(); }
    size_t num_rules() const override { return d_.num_rules(); }
    std::string rule_name(int r) const override { return d_.rule(r).name; }
    const std::vector<bool>& fired() const override { return fired_; }

    const std::vector<uint64_t>&
    rule_commit_counts() const override
    {
        return commits_;
    }

    const std::vector<uint64_t>&
    rule_abort_counts() const override
    {
        return aborts_;
    }

    const std::vector<uint64_t>&
    rule_abort_reason_counts() const override
    {
        return reasons_;
    }

    void
    begin_step_cycle() override
    {
        p_.begin_cycle();
        fired_.assign(fired_.size(), false);
    }

    bool
    step_rule(int rule) override
    {
        return run_one_rule(rule);
    }

    void
    end_step_cycle() override
    {
        p_.end_cycle();
        ++cycles_;
    }

    Bits get_mid_reg(int reg) const override
    {
        return p_.get_intermediate(reg);
    }

    // -- CoverageModel. The evaluator counts every node it visits (the
    // cheapest uniform rule); consumers mask the counts down to the
    // classified statement/branch points (analysis::coverage_points),
    // where all engines agree.
    void
    enable_coverage() override
    {
        if (cov_on_)
            return;
        cov_on_ = true;
        cov_stmt_.assign(d_.num_nodes(), 0);
        cov_taken_.assign(d_.num_nodes(), 0);
        cov_not_taken_.assign(d_.num_nodes(), 0);
    }

    size_t num_nodes() const override { return d_.num_nodes(); }

    const std::vector<uint64_t>& stmt_counts() const override
    {
        return cov_stmt_;
    }

    const std::vector<uint64_t>& branch_taken_counts() const override
    {
        return cov_taken_;
    }

    const std::vector<uint64_t>& branch_not_taken_counts() const override
    {
        return cov_not_taken_;
    }

    // -- CheckpointableModel. Every tier keeps the same auxiliary
    // state (the policies differ only in transaction mechanics, which
    // is transient within a cycle), so checkpoints move freely between
    // tiers: a T5 checkpoint resumes byte-identically on T0.
    std::string state_key() const override { return "tier-v1"; }

    void
    save_extra_state(StateWriter& w) const override
    {
        w.put_u64(cycles_);
        w.put_bool_vec(fired_);
        w.put_u64_vec(commits_);
        w.put_u64_vec(aborts_);
        w.put_u64_vec(reasons_);
        w.put_u64(cov_on_ ? 1 : 0);
        if (cov_on_) {
            w.put_u64_vec(cov_stmt_);
            w.put_u64_vec(cov_taken_);
            w.put_u64_vec(cov_not_taken_);
        }
    }

    void
    load_extra_state(StateReader& r) override
    {
        cycles_ = r.get_u64();
        std::vector<bool> fired = r.get_bool_vec();
        std::vector<uint64_t> commits = r.get_u64_vec();
        std::vector<uint64_t> aborts = r.get_u64_vec();
        std::vector<uint64_t> reasons = r.get_u64_vec();
        if (fired.size() != fired_.size() ||
            commits.size() != commits_.size() ||
            aborts.size() != aborts_.size() ||
            reasons.size() != reasons_.size())
            fatal("checkpoint engine state does not match this "
                  "design's rule count");
        fired_ = std::move(fired);
        commits_ = std::move(commits);
        aborts_ = std::move(aborts);
        reasons_ = std::move(reasons);
        if (r.get_u64() != 0) {
            enable_coverage();
            std::vector<uint64_t> stmt = r.get_u64_vec();
            std::vector<uint64_t> taken = r.get_u64_vec();
            std::vector<uint64_t> not_taken = r.get_u64_vec();
            if (stmt.size() != cov_stmt_.size() ||
                taken.size() != cov_taken_.size() ||
                not_taken.size() != cov_not_taken_.size())
                fatal("checkpoint coverage state does not match this "
                      "design's node count");
            cov_stmt_ = std::move(stmt);
            cov_taken_ = std::move(taken);
            cov_not_taken_ = std::move(not_taken);
        } else if (cov_on_) {
            // Full-overwrite contract: the snapshot predates coverage
            // being enabled on this instance, so restoring it clears
            // whatever was counted since. Without this, a model reused
            // across fault trials (TrialContext restore) leaks counts
            // from earlier trials into later databases.
            cov_stmt_.assign(cov_stmt_.size(), 0);
            cov_taken_.assign(cov_taken_.size(), 0);
            cov_not_taken_.assign(cov_not_taken_.size(), 0);
        }
    }

  private:
    void
    run(const std::vector<int>& order)
    {
        begin_step_cycle();
        for (int r : order)
            run_one_rule(r);
        end_step_cycle();
    }

    bool
    run_one_rule(int r)
    {
        p_.begin_rule(r);
        depth_ = 0;
        push_frame((size_t)d_.rule(r).nslots);
        fail_point_ = nullptr;
        Bits scratch;
        bool ok = eval(d_.rule(r).body, scratch);
        if (ok) {
            p_.commit_rule(r);
            fired_[(size_t)r] = true;
            ++commits_[(size_t)r];
        } else {
            p_.fail_rule(r, fail_point_);
            ++aborts_[(size_t)r];
            AbortReason reason = AbortReason::kGuard;
            if (fail_point_ != nullptr) {
                if (fail_point_->kind == ActionKind::kRead)
                    reason = AbortReason::kReadConflict;
                else if (fail_point_->kind == ActionKind::kWrite)
                    reason = AbortReason::kWriteConflict;
            }
            ++reasons_[(size_t)r * kNumAbortReasons + (size_t)reason];
        }
        pop_frame();
        return ok;
    }

    std::vector<Bits>&
    push_frame(size_t n)
    {
        if (depth_ == frame_pool_.size())
            frame_pool_.emplace_back();
        std::vector<Bits>& f = frame_pool_[depth_++];
        if (f.size() < n)
            f.resize(n);
        return f;
    }

    void pop_frame() { --depth_; }

    std::vector<Bits>& frame() { return frame_pool_[depth_ - 1]; }

    /** Evaluate an action; false means the rule aborted. */
    bool
    eval(const Action* a, Bits& out)
    {
        if (cov_on_)
            ++cov_stmt_[(size_t)a->id];
        switch (a->kind) {
          case ActionKind::kConst:
            out = a->value;
            return true;

          case ActionKind::kVar:
            out = frame()[(size_t)a->slot];
            return true;

          case ActionKind::kLet: {
            Bits v;
            if (!eval(a->a0, v))
                return false;
            frame()[(size_t)a->slot] = std::move(v);
            return eval(a->a1, out);
          }

          case ActionKind::kAssign: {
            Bits v;
            if (!eval(a->a0, v))
                return false;
            frame()[(size_t)a->slot] = std::move(v);
            out = Bits();
            return true;
          }

          case ActionKind::kSeq: {
            Bits scratch;
            if (!eval(a->a0, scratch))
                return false;
            return eval(a->a1, out);
          }

          case ActionKind::kIf: {
            Bits c;
            if (!eval(a->a0, c))
                return false;
            bool taken = c.truthy();
            if (cov_on_)
                ++(taken ? cov_taken_ : cov_not_taken_)[(size_t)a->id];
            return eval(taken ? a->a1 : a->a2, out);
          }

          case ActionKind::kRead:
            if (!p_.read(a, out)) {
                fail_point_ = a;
                return false;
            }
            return true;

          case ActionKind::kWrite: {
            Bits v;
            if (!eval(a->a0, v))
                return false;
            if (!p_.write(a, v)) {
                fail_point_ = a;
                return false;
            }
            out = Bits();
            return true;
          }

          case ActionKind::kGuard: {
            Bits c;
            if (!eval(a->a0, c))
                return false;
            bool pass = c.truthy();
            if (cov_on_)
                ++(pass ? cov_taken_ : cov_not_taken_)[(size_t)a->id];
            if (!pass) {
                fail_point_ = a;
                return false;
            }
            out = Bits();
            return true;
          }

          case ActionKind::kUnop: {
            Bits v;
            if (!eval(a->a0, v))
                return false;
            switch (a->op) {
              case Op::kNot: out = v.bnot(); break;
              case Op::kNeg: out = v.neg(); break;
              case Op::kZExtL: out = v.zextl(a->imm0); break;
              case Op::kSExtL: out = v.sextl(a->imm0); break;
              case Op::kSlice: out = v.slice(a->imm0, a->imm1); break;
              default: panic("bad unop");
            }
            return true;
          }

          case ActionKind::kBinop: {
            Bits x, y;
            if (!eval(a->a0, x) || !eval(a->a1, y))
                return false;
            switch (a->op) {
              case Op::kAnd: out = x.band(y); break;
              case Op::kOr: out = x.bor(y); break;
              case Op::kXor: out = x.bxor(y); break;
              case Op::kAdd: out = x.add(y); break;
              case Op::kSub: out = x.sub(y); break;
              case Op::kMul: out = x.mul(y); break;
              case Op::kEq: out = x.eq(y); break;
              case Op::kNe: out = x.ne(y); break;
              case Op::kLtu: out = x.ltu(y); break;
              case Op::kLeu: out = x.leu(y); break;
              case Op::kGtu: out = x.gtu(y); break;
              case Op::kGeu: out = x.geu(y); break;
              case Op::kLts: out = x.lts(y); break;
              case Op::kLes: out = x.les(y); break;
              case Op::kGts: out = x.gts(y); break;
              case Op::kGes: out = x.ges(y); break;
              case Op::kLsl: out = x.shl(y); break;
              case Op::kLsr: out = x.shr(y); break;
              case Op::kAsr: out = x.asr(y); break;
              case Op::kConcat: out = x.concat(y); break;
              default: panic("bad binop");
            }
            return true;
          }

          case ActionKind::kGetField: {
            Bits v;
            if (!eval(a->a0, v))
                return false;
            const Field& f = a->a0->type->fields[(size_t)a->field_index];
            out = v.slice(f.offset, f.type->width);
            return true;
          }

          case ActionKind::kSubstField: {
            Bits s, v;
            if (!eval(a->a0, s) || !eval(a->a1, v))
                return false;
            const Field& f = a->a0->type->fields[(size_t)a->field_index];
            Bits mask = Bits::ones(f.type->width)
                            .zextl(s.width())
                            .shl_by(f.offset)
                            .bnot();
            out = s.band(mask).bor(v.zextl(s.width()).shl_by(f.offset));
            return true;
          }

          case ActionKind::kCall: {
            // frame_pool_ may reallocate during nested calls, so index
            // the callee frame rather than holding a reference.
            size_t callee_idx = depth_;
            push_frame((size_t)a->fn->nslots);
            for (size_t i = 0; i < a->args.size(); ++i) {
                // Arguments are pure; they evaluate in the caller frame.
                --depth_;
                Bits v;
                bool ok = eval(a->args[i], v);
                ++depth_;
                if (!ok)
                    return false;
                frame_pool_[callee_idx][i] = std::move(v);
            }
            bool ok = eval(a->fn->body, out);
            pop_frame();
            return ok;
          }
        }
        panic("unreachable");
    }

    const Design& d_;
    Policy p_;
    std::vector<std::vector<Bits>> frame_pool_;
    size_t depth_ = 0;
    const Action* fail_point_ = nullptr;
    std::vector<bool> fired_;
    std::vector<uint64_t> commits_, aborts_;
    std::vector<uint64_t> reasons_; // [rule * kNumAbortReasons + reason]
    uint64_t cycles_ = 0;
    bool cov_on_ = false;
    std::vector<uint64_t> cov_stmt_, cov_taken_, cov_not_taken_;
};

} // namespace

std::unique_ptr<TierModel>
make_engine(const Design& design, Tier tier)
{
    switch (tier) {
      case Tier::kT0Naive:
        return std::make_unique<TierEngine<PolicyT0>>(design,
                                                      PolicyT0(design));
      case Tier::kT1SplitSets:
        return std::make_unique<TierEngine<PolicyT1>>(design,
                                                      PolicyT1(design));
      case Tier::kT2Accumulate:
        return std::make_unique<TierEngine<PolicyT23<false>>>(
            design, PolicyT23<false>(design));
      case Tier::kT3ResetOnFail:
        return std::make_unique<TierEngine<PolicyT23<true>>>(
            design, PolicyT23<true>(design));
      case Tier::kT4MergedData:
        return std::make_unique<TierEngine<PolicyT4>>(design,
                                                      PolicyT4(design));
      case Tier::kT5StaticAnalysis:
        return std::make_unique<TierEngine<PolicyT5>>(
            design, PolicyT5(design, analysis::analyze(design)));
    }
    panic("unknown tier");
}

} // namespace koika::sim
