/**
 * @file
 * The common cycle-accurate model interface.
 *
 * Every execution engine in the repository — the reference interpreter
 * wrapper, the six Cuttlesim optimization tiers, generated C++ models,
 * and both RTL simulators — implements Model. Cycle-accuracy (paper §1)
 * is defined over this interface: two engines agree iff get_reg returns
 * the same value for every register after every cycle.
 *
 * Peripherals (src/harness/peripheral.hpp) interact with a design purely
 * through committed state between cycles, which keeps external I/O
 * identical across engines.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/bits.hpp"

namespace koika::sim {

/**
 * Why a rule's transaction failed (paper §2.3's three failure sources).
 * The numeric values are part of the generated-model ABI: instrumented
 * models index their abort_reason_count arrays with them (see
 * codegen/runtime/cuttlesim.hpp), so interpreted and compiled engines
 * can be compared entry by entry.
 */
enum class AbortReason : int {
    /** Explicit `abort` or a failed guard (`guard(0)` and `abort()`
     *  lower to the same check). */
    kGuard = 0,
    /** Read-port conflict: read0 of a register already written at
     *  port 0 this cycle, or read1 forwarding rules violated. */
    kReadConflict = 1,
    /** Write-port conflict: double write or write0-after-read1. */
    kWriteConflict = 2,
};

constexpr int kNumAbortReasons = 3;

inline const char*
abort_reason_name(AbortReason reason)
{
    switch (reason) {
      case AbortReason::kGuard: return "guard";
      case AbortReason::kReadConflict: return "read_conflict";
      case AbortReason::kWriteConflict: return "write_conflict";
    }
    return "?";
}

class Model
{
  public:
    virtual ~Model() = default;

    /** Advance the design by one cycle. */
    virtual void cycle() = 0;

    /** Committed value of register `reg` (valid between cycles). */
    virtual Bits get_reg(int reg) const = 0;

    /** Poke a register between cycles (peripherals, test setup). */
    virtual void set_reg(int reg, const Bits& value) = 0;

    virtual uint64_t cycles_run() const = 0;

    /** Number of registers (matches the source design's order). */
    virtual size_t num_regs() const = 0;

    /** Snapshot of all committed registers. */
    std::vector<Bits>
    snapshot() const
    {
        std::vector<Bits> out;
        out.reserve(num_regs());
        for (size_t i = 0; i < num_regs(); ++i)
            out.push_back(get_reg((int)i));
        return out;
    }
};

/**
 * A Model that can additionally report per-rule activity. Implemented by
 * the tier engines (always) and by GeneratedModel when the wrapped
 * compiled model was emitted with counters; the observability layer
 * (src/obs/) discovers it with dynamic_cast so the same stats collector
 * works on every engine.
 */
class RuleStatsModel : public Model
{
  public:
    /** Number of rules in the underlying design's schedule. */
    virtual size_t num_rules() const = 0;

    /** Source-level name of rule `rule` (same indexing as the counter
     *  vectors below). */
    virtual std::string rule_name(int rule) const = 0;

    /** Which rules committed during the most recent cycle. */
    virtual const std::vector<bool>& fired() const = 0;

    /**
     * Per-rule commit counters (Gcov-style architecture statistics,
     * case study 4): [r] = number of cycles rule r committed.
     */
    virtual const std::vector<uint64_t>& rule_commit_counts() const = 0;
    /** Per-rule abort counters. */
    virtual const std::vector<uint64_t>& rule_abort_counts() const = 0;

    /**
     * Per-rule, per-reason abort counters, flattened as
     * [rule * kNumAbortReasons + (int)reason]. Empty when the engine
     * does not track reasons (e.g. a generated model compiled without
     * `--instrument`); callers must handle both shapes.
     */
    virtual const std::vector<uint64_t>& rule_abort_reason_counts() const = 0;
};

/**
 * An engine that can report per-node execution coverage. This is a
 * standalone mixin rather than a Model subclass so engines can combine
 * it freely with RuleStatsModel without a diamond; the coverage layer
 * (src/obs/coverage.hpp) discovers it with
 * `dynamic_cast<CoverageModel*>(&model)` — the same pattern the stats
 * collector uses for RuleStatsModel.
 *
 * Counts are per AST node id of the source design. Engines may count
 * every node they visit (the interpreters do) or only the classified
 * statement/branch points (generated models do); consumers mask counts
 * through analysis::coverage_points before comparing engines, so both
 * shapes yield identical coverage.
 */
class CoverageModel
{
  public:
    virtual ~CoverageModel() = default;

    /**
     * Start collecting (idempotent). Engines that always collect — e.g.
     * generated models compiled with coverage arrays — may make this a
     * no-op. Counts only cover cycles run after the first call.
     */
    virtual void enable_coverage() = 0;

    /** Number of AST nodes (the length of the count vectors). */
    virtual size_t num_nodes() const = 0;

    /**
     * Per-node execution counts. Empty when coverage was never enabled
     * (mirrors the rule_abort_reason_counts contract: callers must
     * handle both shapes).
     */
    virtual const std::vector<uint64_t>& stmt_counts() const = 0;

    /** Per-node taken counts (meaningful at `if`/`guard` nodes: the
     *  condition evaluated truthy / the guard passed). */
    virtual const std::vector<uint64_t>& branch_taken_counts() const = 0;

    /** Per-node not-taken counts (else arm / guard failed). */
    virtual const std::vector<uint64_t>&
    branch_not_taken_counts() const = 0;
};

} // namespace koika::sim
