/**
 * @file
 * The common cycle-accurate model interface.
 *
 * Every execution engine in the repository — the reference interpreter
 * wrapper, the six Cuttlesim optimization tiers, generated C++ models,
 * and both RTL simulators — implements Model. Cycle-accuracy (paper §1)
 * is defined over this interface: two engines agree iff get_reg returns
 * the same value for every register after every cycle.
 *
 * Peripherals (src/harness/peripheral.hpp) interact with a design purely
 * through committed state between cycles, which keeps external I/O
 * identical across engines.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "base/bits.hpp"

namespace koika::sim {

class Model
{
  public:
    virtual ~Model() = default;

    /** Advance the design by one cycle. */
    virtual void cycle() = 0;

    /** Committed value of register `reg` (valid between cycles). */
    virtual Bits get_reg(int reg) const = 0;

    /** Poke a register between cycles (peripherals, test setup). */
    virtual void set_reg(int reg, const Bits& value) = 0;

    virtual uint64_t cycles_run() const = 0;

    /** Number of registers (matches the source design's order). */
    virtual size_t num_regs() const = 0;

    /** Snapshot of all committed registers. */
    std::vector<Bits>
    snapshot() const
    {
        std::vector<Bits> out;
        out.reserve(num_regs());
        for (size_t i = 0; i < num_regs(); ++i)
            out.push_back(get_reg((int)i));
        return out;
    }
};

} // namespace koika::sim
