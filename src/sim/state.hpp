/**
 * @file
 * Flat byte-stream serialization of engine and peripheral state.
 *
 * The checkpoint subsystem (src/replay/) persists *committed* register
 * state generically through sim::Model::get_reg/set_reg. Everything
 * else a byte-identical resume needs — cycle counters, per-rule
 * commit/abort tallies, coverage arrays, peripheral RAM, pending
 * memory responses — is auxiliary state that only the owning component
 * can name. StateWriter/StateReader give those components one tiny,
 * versionable wire format (little-endian, length-prefixed vectors) to
 * serialize through, and CheckpointableModel is the capability an
 * engine implements to participate. Discovery is by dynamic_cast, the
 * same pattern RuleStatsModel and CoverageModel use.
 */
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "base/error.hpp"

namespace koika::sim {

/** Append-only little-endian byte buffer. */
class StateWriter
{
  public:
    void
    put_u32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf_.push_back((char)((v >> (8 * i)) & 0xff));
    }

    void
    put_u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf_.push_back((char)((v >> (8 * i)) & 0xff));
    }

    void
    put_bytes(const void* data, size_t len)
    {
        put_u64(len);
        buf_.append((const char*)data, len);
    }

    void put_string(const std::string& s) { put_bytes(s.data(), s.size()); }

    void
    put_u64_vec(const std::vector<uint64_t>& v)
    {
        put_u64(v.size());
        for (uint64_t x : v)
            put_u64(x);
    }

    void
    put_bool_vec(const std::vector<bool>& v)
    {
        put_u64(v.size());
        for (bool b : v)
            buf_.push_back(b ? 1 : 0);
    }

    const std::string& bytes() const { return buf_; }
    std::string take() { return std::move(buf_); }

  private:
    std::string buf_;
};

/** Sequential reader over a StateWriter buffer; FatalError on underrun. */
class StateReader
{
  public:
    explicit StateReader(const std::string& bytes) : buf_(bytes) {}

    uint32_t
    get_u32()
    {
        need(4);
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= (uint32_t)(uint8_t)buf_[pos_ + (size_t)i] << (8 * i);
        pos_ += 4;
        return v;
    }

    uint64_t
    get_u64()
    {
        need(8);
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= (uint64_t)(uint8_t)buf_[pos_ + (size_t)i] << (8 * i);
        pos_ += 8;
        return v;
    }

    std::string
    get_string()
    {
        uint64_t len = get_u64();
        need(len);
        std::string s = buf_.substr(pos_, len);
        pos_ += len;
        return s;
    }

    std::vector<uint64_t>
    get_u64_vec()
    {
        uint64_t n = get_u64();
        need(n * 8);
        std::vector<uint64_t> v;
        v.reserve(n);
        for (uint64_t i = 0; i < n; ++i)
            v.push_back(get_u64());
        return v;
    }

    std::vector<bool>
    get_bool_vec()
    {
        uint64_t n = get_u64();
        need(n);
        std::vector<bool> v;
        v.reserve(n);
        for (uint64_t i = 0; i < n; ++i)
            v.push_back(buf_[pos_ + i] != 0);
        pos_ += n;
        return v;
    }

    size_t remaining() const { return buf_.size() - pos_; }
    bool done() const { return pos_ == buf_.size(); }

  private:
    void
    need(uint64_t n)
    {
        if (buf_.size() - pos_ < n)
            fatal("checkpoint state section truncated: wanted %llu "
                  "more bytes, have %llu",
                  (unsigned long long)n,
                  (unsigned long long)(buf_.size() - pos_));
    }

    const std::string& buf_;
    size_t pos_ = 0;
};

/**
 * Capability: an engine that can export and re-import its auxiliary
 * state (cycle counter, rule counters, coverage arrays) so a
 * checkpointed run resumes byte-identically. Committed registers are
 * NOT part of this state — they travel through get_reg/set_reg, which
 * every Model supports; an engine without this capability can still be
 * checkpointed, it just restarts its counters from zero on restore.
 *
 * state_key() names the layout (e.g. "tier-v1"); restore only replays a
 * section whose key matches, so a checkpoint taken on one engine family
 * degrades gracefully (registers + cycle only) on another.
 */
class CheckpointableModel
{
  public:
    virtual ~CheckpointableModel() = default;

    virtual std::string state_key() const = 0;
    virtual void save_extra_state(StateWriter& w) const = 0;
    virtual void load_extra_state(StateReader& r) = 0;
};

} // namespace koika::sim
