#include "fault/fault.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <thread>

#include "base/io.hpp"
#include "base/signal.hpp"
#include "harness/parallel.hpp"
#include "obs/prof.hpp"
#include "sim/state.hpp"

namespace koika::fault {

namespace {

constexpr const char* kFaultCkptSchema = "cuttlesim-fault-ckpt-v1";

/**
 * Bounded draw via modulo. Deliberately not uniform_int_distribution:
 * its mapping is implementation-defined, and campaign reports must be
 * reproducible from the seed alone, everywhere.
 */
uint64_t
draw(std::mt19937_64& rng, uint64_t n)
{
    return n == 0 ? 0 : rng() % n;
}

void
force_bit(sim::Model& model, int reg, uint32_t bit, bool value)
{
    model.set_reg(reg, model.get_reg(reg).with_bit(bit, value));
}

void
flip_bit(sim::Model& model, int reg, uint32_t bit)
{
    Bits v = model.get_reg(reg);
    model.set_reg(reg, v.with_bit(bit, !v.bit(bit)));
}

} // namespace

obs::Json
injection_to_json(size_t index, const InjectionRecord& r)
{
    obs::Json e = obs::Json::object();
    e["index"] = (uint64_t)index;
    e["cycle"] = r.spec.cycle;
    e["reg"] = (int64_t)r.spec.reg;
    e["reg_name"] = r.reg_name;
    e["bit"] = (uint64_t)r.spec.bit;
    e["kind"] = fault_kind_name(r.spec.kind);
    if (r.spec.kind != FaultKind::kBitFlip)
        e["stuck_cycles"] = r.spec.stuck_cycles;
    e["outcome"] = outcome_name(r.outcome);
    e["diverged"] = r.diverged;
    if (r.diverged) {
        e["first_divergence_cycle"] = r.first_divergence_cycle;
        e["first_divergence_reg"] = (int64_t)r.first_divergence_reg;
    }
    e["detected"] = r.detected;
    if (r.detected) {
        e["detect_cycle"] = r.detect_cycle;
        e["detect_detail"] = r.detect_detail;
    }
    e["final_state_matches"] = r.final_state_matches;
    return e;
}

namespace {

const obs::Json&
jfield(const obs::Json& j, const char* key)
{
    const obs::Json* v = j.find(key);
    if (v == nullptr)
        fatal("fault checkpoint: missing field '%s'", key);
    return *v;
}

} // namespace

InjectionRecord
injection_from_json(const obs::Json& e)
{
    InjectionRecord r;
    r.spec.cycle = jfield(e, "cycle").as_u64();
    r.spec.reg = (int)jfield(e, "reg").as_int();
    r.reg_name = jfield(e, "reg_name").as_string();
    r.spec.bit = (uint32_t)jfield(e, "bit").as_u64();
    std::string kind = jfield(e, "kind").as_string();
    for (int k = 0; k < kNumFaultKinds; ++k)
        if (kind == fault_kind_name((FaultKind)k))
            r.spec.kind = (FaultKind)k;
    if (const obs::Json* sc = e.find("stuck_cycles"))
        r.spec.stuck_cycles = sc->as_u64();
    std::string outcome = jfield(e, "outcome").as_string();
    for (int o = 0; o < 3; ++o)
        if (outcome == outcome_name((Outcome)o))
            r.outcome = (Outcome)o;
    r.diverged = jfield(e, "diverged").as_bool();
    if (r.diverged) {
        r.first_divergence_cycle =
            jfield(e, "first_divergence_cycle").as_u64();
        r.first_divergence_reg =
            (int)jfield(e, "first_divergence_reg").as_int();
    }
    r.detected = jfield(e, "detected").as_bool();
    if (r.detected) {
        r.detect_cycle = jfield(e, "detect_cycle").as_u64();
        r.detect_detail = jfield(e, "detect_detail").as_string();
    }
    r.final_state_matches = jfield(e, "final_state_matches").as_bool();
    return r;
}

obs::Json
campaign_config_echo(const CampaignConfig& config)
{
    obs::Json cfg = obs::Json::object();
    cfg["seed"] = config.seed;
    cfg["count"] = (int64_t)config.count;
    cfg["cycles"] = config.cycles;
    cfg["stuck_at"] = config.stuck_at;
    cfg["max_stuck_cycles"] = config.max_stuck_cycles;
    return cfg;
}

namespace {

/** Write campaign progress (completed prefix) atomically. */
void
save_progress(const std::string& path, const std::string& design,
              const CampaignConfig& config,
              const std::vector<InjectionRecord>& records,
              size_t completed, const obs::CoverageMap* coverage)
{
    obs::Json j = obs::Json::object();
    j["schema"] = kFaultCkptSchema;
    j["design"] = design;
    j["config"] = campaign_config_echo(config);
    j["completed"] = (uint64_t)completed;
    obs::Json list = obs::Json::array();
    for (size_t i = 0; i < completed; ++i)
        list.push_back(injection_to_json(i, records[i]));
    j["injections"] = std::move(list);
    if (coverage != nullptr)
        j["coverage"] = coverage->to_json();
    write_file_atomic(path, j.dump(2) + "\n");
}

/**
 * Load campaign progress. Returns the number of completed injections
 * (0 when the file does not exist), filling the record prefix and
 * merged coverage. FatalError when the file exists but describes a
 * different campaign — resuming someone else's progress would produce
 * a silently wrong report.
 */
size_t
load_progress(const std::string& path, const std::string& design,
              const CampaignConfig& config,
              std::vector<InjectionRecord>& records,
              obs::CoverageMap* coverage)
{
    if (!std::ifstream(path))
        return 0;
    obs::Json j = obs::Json::parse(read_file(path));
    if (jfield(j, "schema").as_string() != kFaultCkptSchema)
        fatal("fault checkpoint '%s': not a %s file", path.c_str(),
              kFaultCkptSchema);
    if (jfield(j, "design").as_string() != design ||
        jfield(j, "config").dump() != campaign_config_echo(config).dump())
        fatal("fault checkpoint '%s' was written by a different "
              "campaign (design or config mismatch); delete it or "
              "match the original flags",
              path.c_str());
    size_t completed = (size_t)jfield(j, "completed").as_u64();
    const obs::Json& list = jfield(j, "injections");
    if (completed > records.size() || list.size() != completed)
        fatal("fault checkpoint '%s': completed count does not match "
              "its records",
              path.c_str());
    for (size_t i = 0; i < completed; ++i)
        records[i] = injection_from_json(list.at(i));
    if (coverage != nullptr) {
        const obs::Json* cov = j.find("coverage");
        if (cov == nullptr)
            fatal("fault checkpoint '%s' has no coverage section but "
                  "this campaign collects coverage; delete it to "
                  "restart",
                  path.c_str());
        coverage->merge(obs::CoverageMap::from_json(*cov));
    }
    return completed;
}

} // namespace

const char*
fault_kind_name(FaultKind kind)
{
    switch (kind) {
      case FaultKind::kBitFlip: return "bit_flip";
      case FaultKind::kStuckAt0: return "stuck_at_0";
      case FaultKind::kStuckAt1: return "stuck_at_1";
    }
    return "?";
}

const char*
outcome_name(Outcome outcome)
{
    switch (outcome) {
      case Outcome::kMasked: return "masked";
      case Outcome::kSilentDataCorruption: return "sdc";
      case Outcome::kDetected: return "detected";
    }
    return "?";
}

std::vector<FaultSpec>
generate_faults(const Design& design, const CampaignConfig& config)
{
    std::vector<int> eligible = config.target_regs;
    if (eligible.empty())
        for (size_t r = 0; r < design.num_registers(); ++r)
            if (design.reg((int)r).type->width > 0)
                eligible.push_back((int)r);
    if (eligible.empty())
        fatal("fault campaign on design '%s': no register is wide "
              "enough to inject into",
              design.name().c_str());
    if (config.cycles < 2)
        fatal("fault campaign needs a horizon of at least 2 cycles");

    std::mt19937_64 rng(config.seed);
    std::vector<FaultSpec> faults;
    faults.reserve((size_t)config.count);
    for (int i = 0; i < config.count; ++i) {
        FaultSpec spec;
        // Leave at least one cycle after the injection so the fault has
        // a chance to propagate (or be masked).
        spec.cycle = draw(rng, config.cycles - 1);
        spec.reg = eligible[(size_t)draw(rng, eligible.size())];
        spec.bit =
            (uint32_t)draw(rng, design.reg(spec.reg).type->width);
        spec.kind = config.stuck_at
                        ? (FaultKind)draw(rng, (uint64_t)kNumFaultKinds)
                        : FaultKind::kBitFlip;
        spec.stuck_cycles =
            spec.kind == FaultKind::kBitFlip
                ? 1
                : 1 + draw(rng, config.max_stuck_cycles);
        faults.push_back(spec);
    }
    return faults;
}

// -- TrialContext ------------------------------------------------------------

TrialContext::TrialContext(const TargetFactory& factory)
    : factory_(factory)
{
    // The per-worker golden build (and snapshot) is still setup work —
    // it just happens once per worker now instead of once per trial.
    obs::ProfScope setup_span("trial/setup");
    golden_ = factory_();
    golden_live_ = true;
    ++rebuilds_;
    auto* ckpt =
        dynamic_cast<sim::CheckpointableModel*>(golden_.model.get());
    // Same condition as batch.cpp's forkable: the engine's auxiliary
    // state must be serializable, and peripherals must either be
    // serializable too or absent entirely.
    bool env_ok = (golden_.save_env != nullptr) ==
                  (golden_.load_env != nullptr);
    warm_ = ckpt != nullptr && env_ok &&
            (golden_.save_env != nullptr || golden_.context == nullptr);
    if (!warm_)
        return;

    // Pristine cycle-0 snapshot, captured before the golden ever steps.
    size_t nregs = golden_.model->num_regs();
    regs0_.reserve(nregs);
    for (size_t r = 0; r < nregs; ++r)
        regs0_.push_back(golden_.model->get_reg((int)r));
    state_key0_ = ckpt->state_key();
    sim::StateWriter w;
    ckpt->save_extra_state(w);
    extra0_ = w.take();
    has_env_ = golden_.save_env != nullptr;
    if (has_env_) {
        sim::StateWriter we;
        golden_.save_env(we);
        env0_ = we.take();
    }
}

void
TrialContext::restore(FaultTarget& target)
{
    for (size_t r = 0; r < regs0_.size(); ++r)
        target.model->set_reg((int)r, regs0_[r]);
    auto* ckpt =
        dynamic_cast<sim::CheckpointableModel*>(target.model.get());
    KOIKA_CHECK(ckpt != nullptr && ckpt->state_key() == state_key0_);
    sim::StateReader extra(extra0_);
    ckpt->load_extra_state(extra);
    if (has_env_) {
        sim::StateReader env(env0_);
        target.load_env(env);
    }
    ++restores_;
}

FaultTarget&
TrialContext::golden()
{
    if (!golden_live_ || (golden_dirty_ && !warm_)) {
        golden_ = factory_();
        golden_live_ = true;
        ++rebuilds_;
    } else if (golden_dirty_) {
        restore(golden_);
    }
    golden_dirty_ = true;
    return golden_;
}

FaultTarget
TrialContext::acquire()
{
    if (warm_ && !spares_.empty()) {
        FaultTarget target = std::move(spares_.back());
        spares_.pop_back();
        restore(target);
        return target;
    }
    ++rebuilds_;
    return factory_();
}

FaultTarget
TrialContext::acquire_unrestored()
{
    if (warm_ && !spares_.empty()) {
        FaultTarget target = std::move(spares_.back());
        spares_.pop_back();
        return target;
    }
    ++rebuilds_;
    return factory_();
}

void
TrialContext::release(FaultTarget&& target, bool healthy)
{
    if (warm_ && healthy)
        spares_.push_back(std::move(target));
    // Unhealthy (or cold) targets are destroyed here: an engine that
    // threw mid-cycle may hold torn internal state no restore can fix.
}

void
TrialContext::poison()
{
    golden_ = FaultTarget{};
    golden_live_ = false;
    golden_dirty_ = false;
    spares_.clear();
}

// -- Scalar trials -----------------------------------------------------------

InjectionRecord
run_injection(const Design& design, const TargetFactory& factory,
              const FaultSpec& spec, uint64_t cycles,
              obs::CoverageMap* coverage)
{
    TrialContext context(factory);
    return run_injection(design, context, spec, cycles, coverage);
}

namespace {

InjectionRecord
run_injection_in(const Design& design, TrialContext& ctx,
                 const FaultSpec& spec, uint64_t cycles,
                 obs::CoverageMap* coverage)
{
    KOIKA_CHECK(spec.reg >= 0 &&
                (size_t)spec.reg < design.num_registers());
    InjectionRecord rec;
    rec.spec = spec;
    rec.reg_name = design.reg(spec.reg).name;

    // Per-trial setup vs. run split: the ratio of these two phases is
    // what decides whether parallel campaigns are worth their fork
    // overhead (ROADMAP item 2). With a warm context, setup is two
    // in-place restores instead of two model constructions.
    obs::ProfScope setup_span("trial/setup");
    FaultTarget& golden = ctx.golden();
    FaultTarget faulted = ctx.acquire();

    // Coverage is harvested from the faulted run only: the golden copy
    // exercises nothing an ordinary simulation would not. The collector
    // is built after the faulted target reached pristine state (its
    // constructor snapshots registers for toggle detection).
    std::unique_ptr<obs::CoverageCollector> collector;
    if (coverage != nullptr)
        collector = std::make_unique<obs::CoverageCollector>(
            design, *faulted.model);
    auto* gstats =
        dynamic_cast<sim::RuleStatsModel*>(golden.model.get());
    auto* fstats =
        dynamic_cast<sim::RuleStatsModel*>(faulted.model.get());
    bool track = gstats != nullptr && fstats != nullptr;

    // Previous-cycle counter snapshots live in the context: same-size
    // assigns below reuse their capacity, so the detection loop stops
    // allocating four vectors per trial (let alone per cycle).
    std::vector<uint64_t>& gprev = ctx.gprev;
    std::vector<uint64_t>& fprev = ctx.fprev;
    std::vector<uint64_t>& gprev_r = ctx.gprev_r;
    std::vector<uint64_t>& fprev_r = ctx.fprev_r;
    if (track) {
        const auto& g0 = gstats->rule_abort_counts();
        const auto& f0 = fstats->rule_abort_counts();
        const auto& g0r = gstats->rule_abort_reason_counts();
        const auto& f0r = fstats->rule_abort_reason_counts();
        gprev.assign(g0.begin(), g0.end());
        fprev.assign(f0.begin(), f0.end());
        gprev_r.assign(g0r.begin(), g0r.end());
        fprev_r.assign(f0r.begin(), f0r.end());
    }

    setup_span.close();
    obs::ProfScope run_span("trial/run");

    bool injected = false;
    bool engine_fault = false;
    size_t nregs = design.num_registers();
    for (uint64_t c = 0; c < cycles; ++c) {
        golden.model->cycle();
        if (golden.stimulus)
            golden.stimulus(*golden.model, c);
        try {
            faulted.model->cycle();
            if (faulted.stimulus)
                faulted.stimulus(*faulted.model, c);
            if (collector != nullptr)
                collector->sample();
        } catch (const std::exception& e) {
            // The engine itself tripped over the corrupted state — the
            // strongest form of detection.
            rec.detected = true;
            rec.detect_cycle = c;
            rec.detect_detail = std::string("engine fault: ") + e.what();
            engine_fault = true;
            break;
        }

        // Detection: a rule aborted in the faulted run more often than
        // in the golden run during the same cycle — the design's guards
        // and port discipline noticing bad state.
        if (track) {
            // One getter call per counter family per cycle; the prev
            // refreshes are same-size assigns into context-owned
            // buffers, so this loop allocates nothing steady-state.
            const auto& g = gstats->rule_abort_counts();
            const auto& f = fstats->rule_abort_counts();
            const auto& gr = gstats->rule_abort_reason_counts();
            const auto& fr = fstats->rule_abort_reason_counts();
            if (injected && !rec.detected) {
                for (size_t r = 0; r < g.size() && r < f.size(); ++r) {
                    uint64_t gd = g[r] - gprev[r];
                    uint64_t fd = f[r] - fprev[r];
                    if (fd <= gd)
                        continue;
                    rec.detected = true;
                    rec.detect_cycle = c;
                    std::string reason = "abort";
                    for (int k = 0; k < sim::kNumAbortReasons; ++k) {
                        size_t idx =
                            r * (size_t)sim::kNumAbortReasons +
                            (size_t)k;
                        if (idx >= gr.size() || idx >= fr.size())
                            break;
                        if (fr[idx] - fprev_r[idx] >
                            gr[idx] - gprev_r[idx]) {
                            reason = std::string(sim::abort_reason_name(
                                         (sim::AbortReason)k)) +
                                     " abort";
                            break;
                        }
                    }
                    rec.detect_detail = "rule '" +
                                        gstats->rule_name((int)r) +
                                        "': excess " + reason;
                    break;
                }
            }
            gprev.assign(g.begin(), g.end());
            fprev.assign(f.begin(), f.end());
            gprev_r.assign(gr.begin(), gr.end());
            fprev_r.assign(fr.begin(), fr.end());
        }

        // Divergence scan before (re-)forcing, so it measures what the
        // fault propagated into, not the forced bit itself.
        if (injected && !rec.diverged) {
            for (size_t r = 0; r < nregs; ++r) {
                if (faulted.model->get_reg((int)r) !=
                    golden.model->get_reg((int)r)) {
                    rec.diverged = true;
                    rec.first_divergence_cycle = c;
                    rec.first_divergence_reg = (int)r;
                    break;
                }
            }
        }

        // Injection happens at the cycle boundary: after cycle
        // spec.cycle committed (and its stimulus ran), before the next
        // cycle starts. Stuck-at faults re-assert the forced bit for
        // stuck_cycles consecutive boundaries.
        if (c == spec.cycle) {
            switch (spec.kind) {
              case FaultKind::kBitFlip:
                flip_bit(*faulted.model, spec.reg, spec.bit);
                break;
              case FaultKind::kStuckAt0:
                force_bit(*faulted.model, spec.reg, spec.bit, false);
                break;
              case FaultKind::kStuckAt1:
                force_bit(*faulted.model, spec.reg, spec.bit, true);
                break;
            }
            injected = true;
        } else if (injected && spec.kind != FaultKind::kBitFlip &&
                   c > spec.cycle &&
                   c < spec.cycle + spec.stuck_cycles) {
            force_bit(*faulted.model, spec.reg, spec.bit,
                      spec.kind == FaultKind::kStuckAt1);
        }
    }

    if (!engine_fault) {
        rec.final_state_matches = true;
        for (size_t r = 0; r < nregs; ++r) {
            if (faulted.model->get_reg((int)r) !=
                golden.model->get_reg((int)r)) {
                rec.final_state_matches = false;
                if (!rec.diverged) {
                    rec.diverged = true;
                    rec.first_divergence_cycle = cycles;
                    rec.first_divergence_reg = (int)r;
                }
                break;
            }
        }
    }

    if (rec.detected)
        rec.outcome = Outcome::kDetected;
    else if (!rec.final_state_matches)
        rec.outcome = Outcome::kSilentDataCorruption;
    else
        rec.outcome = Outcome::kMasked;
    if (collector != nullptr)
        *coverage = collector->take("");

    // An engine-faulted model may hold torn internal state; only
    // cleanly-finished targets go back to the spare pool for reuse.
    ctx.release(std::move(faulted), !engine_fault);
    return rec;
}

} // namespace

InjectionRecord
run_injection(const Design& design, TrialContext& context,
              const FaultSpec& spec, uint64_t cycles,
              obs::CoverageMap* coverage)
{
    try {
        return run_injection_in(design, context, spec, cycles, coverage);
    } catch (...) {
        // An exception that escapes the trial (engine faults are caught
        // inside; this is a harness/setup failure) may have left the
        // context's cached targets mid-cycle — drop them all so the
        // next trial rebuilds from the factory.
        context.poison();
        throw;
    }
}

namespace {

/** Per-pool-worker trial state: one warm TrialContext per worker, built
 *  lazily on the worker's own thread and destroyed when the pool batch
 *  ends (harness::WorkerContext lifetime contract). */
struct TrialWorkerContext final : harness::WorkerContext
{
    explicit TrialWorkerContext(const TargetFactory& factory)
        : trial(factory)
    {
    }

    TrialContext trial;
};

harness::ContextFactory
trial_context_factory(const TargetFactory& factory)
{
    return [&factory](int) -> std::unique_ptr<harness::WorkerContext> {
        return std::make_unique<TrialWorkerContext>(factory);
    };
}

TrialContext&
trial_of(harness::WorkerContext* ctx)
{
    return static_cast<TrialWorkerContext*>(ctx)->trial;
}

} // namespace

bool
run_injection_range(const Design& design, const TargetFactory& factory,
                    const std::vector<FaultSpec>& faults, size_t first,
                    size_t count, uint64_t cycles, int jobs, int batch,
                    InjectionRecord* records, obs::CoverageMap* coverage,
                    const std::function<void(uint64_t, uint64_t)>& before_item)
{
    std::atomic<bool> interrupted{false};
    auto run_one = [&](uint64_t k, TrialContext& trial) {
        if (shutdown_requested()) {
            interrupted.store(true);
            return;
        }
        if (before_item)
            before_item(k, 1);
        records[k] = run_injection(design, trial, faults[first + k],
                                   cycles, coverage ? &coverage[k] : nullptr);
    };
    if (batch > 1) {
        // Batched lanes: one lockstep batch per pool item, forking from
        // the worker's warm golden. before_item sees the whole group,
        // so a chaos crash aimed at injection i fires whichever group i
        // lands in.
        auto run_group = [&](uint64_t k0, uint64_t n,
                             harness::WorkerContext* ctx) {
            if (shutdown_requested()) {
                interrupted.store(true);
                return;
            }
            if (before_item)
                before_item(k0, n);
            run_injection_batch(design, trial_of(ctx), &faults[first + k0],
                                (size_t)n, cycles, &records[k0],
                                coverage ? &coverage[k0] : nullptr);
        };
        harness::parallel_for_groups_ctx((uint64_t)count, (uint64_t)batch,
                                         jobs, trial_context_factory(factory),
                                         run_group);
    } else if (jobs == 1) {
        // Serial fast path: no pool, one warm context on this thread.
        TrialContext trial(factory);
        for (uint64_t k = 0; k < (uint64_t)count; ++k)
            run_one(k, trial);
    } else {
        harness::parallel_for_ctx(
            (uint64_t)count, jobs, trial_context_factory(factory),
            [&](uint64_t k, harness::WorkerContext* ctx) {
                run_one(k, trial_of(ctx));
            });
    }
    return !interrupted.load();
}

CampaignReport
run_campaign(const Design& design, const TargetFactory& factory,
             const CampaignConfig& config)
{
    CampaignReport report;
    report.design = design.name();
    report.config = config;

    // The entire fault list is drawn from the campaign seed before any
    // injection runs, so sharding the (independent) injections across
    // workers cannot change what gets injected; writing each record
    // into its own slot keeps the report order identical to a serial
    // run. Outcome tallying happens after the join, in list order.
    obs::ProfScope gen_span("campaign/generate-faults");
    std::vector<FaultSpec> faults = generate_faults(design, config);
    gen_span.close();
    report.injections.resize(faults.size());
    if (config.collect_coverage) {
        report.coverage = obs::CoverageMap::for_design(design);
        report.has_coverage = true;
    }

    // Resume a checkpointed campaign: the completed prefix of records
    // (and its merged coverage) comes straight from the progress file,
    // and only the remaining injections actually run. Coverage merge
    // is associative addition, so prefix-from-file + suffix-run equals
    // an uninterrupted run byte for byte.
    size_t completed = 0;
    if (!config.checkpoint_file.empty())
        completed = load_progress(
            config.checkpoint_file, report.design, config,
            report.injections,
            config.collect_coverage ? &report.coverage : nullptr);
    report.resumed = completed;

    size_t chunk = config.checkpoint_file.empty()
                       ? faults.size()
                       : (size_t)std::max(config.checkpoint_every, 1);
    std::vector<obs::CoverageMap> shard_cov;
    if (config.collect_coverage)
        shard_cov.resize(faults.size());

    // Heartbeat: one monitor thread repaints a stderr status line about
    // once a second. It reads two atomics (completed count, profiler
    // busy aggregate) and never touches campaign state, so the report
    // stays byte-identical with or without it.
    std::atomic<uint64_t> done{(uint64_t)completed};
    std::atomic<bool> stop_monitor{false};
    bool monitor_printed = false;
    std::thread monitor;
    if (config.progress) {
        uint64_t total = (uint64_t)faults.size();
        int jobs = harness::resolve_jobs(config.jobs);
        monitor = std::thread([&done, &stop_monitor, &monitor_printed,
                               total, jobs] {
            obs::Profiler& prof = obs::Profiler::instance();
            auto start = std::chrono::steady_clock::now();
            uint64_t first = done.load(std::memory_order_relaxed);
            double prev_busy = prof.busy_seconds();
            auto prev_t = start;
            while (!stop_monitor.load(std::memory_order_relaxed)) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(200));
                auto now = std::chrono::steady_clock::now();
                if (now - prev_t < std::chrono::milliseconds(900))
                    continue;
                double elapsed =
                    std::chrono::duration<double>(now - start).count();
                double interval =
                    std::chrono::duration<double>(now - prev_t).count();
                prev_t = now;
                uint64_t d = done.load(std::memory_order_relaxed);
                double rate =
                    elapsed > 0 ? (double)(d - first) / elapsed : 0;
                char line[160];
                int len = std::snprintf(
                    line, sizeof line,
                    "\rfault campaign: %llu/%llu injections",
                    (unsigned long long)d, (unsigned long long)total);
                if (rate > 0) {
                    len += std::snprintf(
                        line + len, sizeof line - (size_t)len,
                        "  %.1f/s  ETA %.0fs", rate,
                        (double)(total - d) / rate);
                }
                if (prof.enabled() && jobs > 0 && interval > 0) {
                    double busy = prof.busy_seconds();
                    double util = (busy - prev_busy) /
                                  (interval * (double)jobs);
                    prev_busy = busy;
                    len += std::snprintf(
                        line + len, sizeof line - (size_t)len,
                        "  workers %.0f%% busy",
                        100.0 * std::min(1.0, std::max(0.0, util)));
                }
                std::fprintf(stderr, "%-79s", line);
                std::fflush(stderr);
                monitor_printed = true;
            }
        });
    }

    auto stop_heartbeat = [&] {
        if (!monitor.joinable())
            return;
        stop_monitor.store(true, std::memory_order_relaxed);
        monitor.join();
        if (monitor_printed)
            std::fprintf(stderr, "\n");
    };

    try {
        while (completed < faults.size()) {
            // Graceful shutdown: stop at the chunk boundary — progress
            // up to here is already flushed to the checkpoint file, so
            // the campaign resumes exactly where it left off.
            if (shutdown_requested()) {
                report.interrupted = true;
                break;
            }
            size_t end = std::min(completed + chunk, faults.size());
            size_t lanes = (size_t)std::max(config.batch, 1);
            // Each pool worker carries one warm TrialContext for the
            // whole chunk: the golden/faulted pair is built (and, for
            // compiled engines, the cache probed) once per worker, and
            // every later trial restores the pristine cycle-0 snapshot
            // in place. Restore reproduces construction exactly, so the
            // records and coverage stay byte-identical to --jobs=1.
            if (lanes <= 1) {
                harness::parallel_for_ctx(
                    end - completed, config.jobs,
                    trial_context_factory(factory),
                    [&](uint64_t k, harness::WorkerContext* ctx) {
                        size_t i = completed + k;
                        report.injections[i] = run_injection(
                            design, trial_of(ctx), faults[i],
                            config.cycles,
                            config.collect_coverage ? &shard_cov[i]
                                                    : nullptr);
                        done.fetch_add(1, std::memory_order_relaxed);
                    });
            } else {
                // Batched execution: consecutive faults share one
                // lockstep batch, one batch per pool item. Records and
                // per-injection coverage land in the same slots as the
                // scalar path, so the report and database stay
                // byte-identical at any (batch, jobs).
                harness::parallel_for_groups_ctx(
                    end - completed, lanes, config.jobs,
                    trial_context_factory(factory),
                    [&](uint64_t first, uint64_t n,
                        harness::WorkerContext* ctx) {
                        size_t i = completed + first;
                        run_injection_batch(
                            design, trial_of(ctx), &faults[i], (size_t)n,
                            config.cycles, &report.injections[i],
                            config.collect_coverage ? &shard_cov[i]
                                                    : nullptr);
                        done.fetch_add(n, std::memory_order_relaxed);
                    });
            }
            // Fold per-injection maps in fault-list order after the
            // join; merge() is commutative addition, so the database
            // matches a serial run byte for byte at any job count.
            if (config.collect_coverage) {
                obs::ProfScope merge_span("campaign/merge");
                for (size_t i = completed; i < end; ++i)
                    report.coverage.merge(shard_cov[i]);
            }
            completed = end;
            if (!config.checkpoint_file.empty()) {
                obs::ProfScope save_span("campaign/progress-save");
                save_progress(config.checkpoint_file, report.design,
                              config, report.injections, completed,
                              config.collect_coverage ? &report.coverage
                                                      : nullptr);
            }
        }
    } catch (...) {
        stop_heartbeat();
        throw;
    }
    stop_heartbeat();
    for (const InjectionRecord& rec : report.injections) {
        switch (rec.outcome) {
          case Outcome::kMasked: report.masked++; break;
          case Outcome::kSilentDataCorruption: report.sdc++; break;
          case Outcome::kDetected: report.detected++; break;
        }
    }
    return report;
}

obs::Json
CampaignReport::to_json() const
{
    obs::Json j = obs::Json::object();
    j["design"] = design;
    j["engine"] = engine;
    if (!config.label.empty())
        j["label"] = config.label;

    j["config"] = campaign_config_echo(config);

    obs::Json summary = obs::Json::object();
    summary["injections"] = (uint64_t)injections.size();
    summary["masked"] = masked;
    summary["sdc"] = sdc;
    summary["detected"] = detected;
    j["summary"] = std::move(summary);

    obs::Json list = obs::Json::array();
    for (size_t i = 0; i < injections.size(); ++i)
        list.push_back(injection_to_json(i, injections[i]));
    j["injections"] = std::move(list);
    return j;
}

std::string
CampaignReport::to_text() const
{
    std::ostringstream os;
    uint64_t total = (uint64_t)injections.size();
    os << "fault campaign: design " << design;
    if (!engine.empty())
        os << ", engine " << engine;
    os << ", seed " << config.seed << ", " << total << " injections, "
       << config.cycles << "-cycle horizon\n";
    auto line = [&](const char* name, uint64_t n) {
        double pct = total ? 100.0 * (double)n / (double)total : 0.0;
        char buf[96];
        std::snprintf(buf, sizeof buf, "  %-10s %6lu  (%5.1f%%)\n",
                      name, (unsigned long)n, pct);
        os << buf;
    };
    line("masked", masked);
    line("sdc", sdc);
    line("detected", detected);
    return os.str();
}

void
CampaignReport::export_to(obs::MetricsRegistry& registry,
                          const std::string& prefix) const
{
    registry.inc(prefix + "/injections", (uint64_t)injections.size());
    registry.inc(prefix + "/outcome/masked", masked);
    registry.inc(prefix + "/outcome/sdc", sdc);
    registry.inc(prefix + "/outcome/detected", detected);
    for (const InjectionRecord& r : injections)
        registry.inc(prefix + "/kind/" + fault_kind_name(r.spec.kind) +
                     "/" + outcome_name(r.outcome));
}

TargetFactory
closed_target(
    const std::function<std::unique_ptr<sim::Model>()>& make_model)
{
    return [make_model]() {
        FaultTarget t;
        t.model = make_model();
        return t;
    };
}

obs::MetricsRegistry
campaign_metrics(const CampaignReport& report)
{
    obs::MetricsRegistry metrics;
    report.export_to(metrics, "fault/" + report.design);
    return metrics;
}

obs::Json
campaign_report_json(const CampaignReport& report,
                     const obs::MetricsRegistry& metrics)
{
    obs::Json j = report.to_json();
    j["metrics"] = metrics.to_json();
    if (report.has_coverage)
        j["coverage"] = report.coverage.summary_json();
    return j;
}

} // namespace koika::fault
