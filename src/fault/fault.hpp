/**
 * @file
 * Deterministic fault-injection campaigns over any sim::Model.
 *
 * The lockstep harness proves that every engine computes the same state
 * every cycle; this module turns that machinery around and asks what the
 * *design* does when state itself misbehaves — the SEU / soft-error
 * resilience analysis that at-scale simulators run as a first-class
 * workload. A campaign draws a seeded, reproducible set of faults
 * (transient bit-flips and stuck-at-0/1 forces on architectural
 * registers), replays each one against a golden copy of the same model,
 * and classifies the outcome with the standard taxonomy:
 *
 *   - masked:   the corrupted state washed out; final state matches the
 *               golden run and no detection signal fired.
 *   - sdc:      silent data corruption — final state differs from the
 *               golden run and nothing noticed.
 *   - detected: a guard/abort fired that did not fire in the golden run
 *               at the same cycle (the design's own port discipline and
 *               guards acting as an error detector), or the engine
 *               itself faulted on the corrupted state.
 *
 * Everything is deterministic: the same seed and config produce a
 * byte-identical JSON report (no wall-clock data is recorded), so
 * campaign reports can be diffed across engines and commits.
 */
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "koika/design.hpp"
#include "obs/coverage.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "sim/model.hpp"
#include "sim/state.hpp"

namespace koika::fault {

enum class FaultKind : int {
    /** Flip one bit once (single-event upset). */
    kBitFlip = 0,
    /** Force one bit to 0 for a window of cycles. */
    kStuckAt0 = 1,
    /** Force one bit to 1 for a window of cycles. */
    kStuckAt1 = 2,
};

constexpr int kNumFaultKinds = 3;

const char* fault_kind_name(FaultKind kind);

enum class Outcome : int {
    kMasked = 0,
    kSilentDataCorruption = 1,
    kDetected = 2,
};

const char* outcome_name(Outcome outcome);

/** One fault to inject. */
struct FaultSpec
{
    /** Inject after this many cycles have committed (and after the
     *  cycle's stimulus ran), i.e. into the state cycle `cycle+1`
     *  starts from. */
    uint64_t cycle = 0;
    /** Register index in the design's order. */
    int reg = 0;
    /** Bit position within the register. */
    uint32_t bit = 0;
    FaultKind kind = FaultKind::kBitFlip;
    /** For stuck-at faults: number of consecutive cycle boundaries the
     *  bit stays forced (>= 1). Ignored for bit flips. */
    uint64_t stuck_cycles = 1;
};

/** What one injection did, fully attributable. */
struct InjectionRecord
{
    FaultSpec spec;
    /** Register name (denormalized so reports stand alone). */
    std::string reg_name;
    Outcome outcome = Outcome::kMasked;

    /** True when any register ever differed from the golden run. */
    bool diverged = false;
    uint64_t first_divergence_cycle = 0;
    int first_divergence_reg = -1;

    /** True when a detection signal fired (see header comment). */
    bool detected = false;
    uint64_t detect_cycle = 0;
    /** "rule 'writeback': 1 excess abort" or "engine fault: ...". */
    std::string detect_detail;

    /** True when the final states matched at the horizon. */
    bool final_state_matches = false;
};

/**
 * One fresh instance of the system under test: the model plus whatever
 * per-instance peripherals drive it. The stimulus (may be null) runs
 * after every cycle, exactly like the lockstep harness's. `context`
 * keeps peripheral objects alive for the model's lifetime.
 *
 * save_env/load_env (may be null) serialize the peripherals' own state
 * — RAM contents, pending responses — so a checkpointed run resumes
 * byte-identically (the "env" section of a cuttlesim-ckpt-v1 file).
 * load_env runs on a freshly built target, so save and load must agree
 * on peripheral order and layout.
 */
struct FaultTarget
{
    std::unique_ptr<sim::Model> model;
    std::function<void(sim::Model&, uint64_t)> stimulus;
    std::function<void(sim::StateWriter&)> save_env;
    std::function<void(sim::StateReader&)> load_env;
    std::shared_ptr<void> context;
};

/** Builds a fresh, identically-initialized target per run. */
using TargetFactory = std::function<FaultTarget()>;

/**
 * Reusable per-worker trial state: the fix for flat parallel scaling
 * (ROADMAP item 2). A campaign trial needs a golden and a faulted
 * target, and historically built BOTH from the factory for every
 * injection — so `trial/setup` grew with the trial count and jobs=hw
 * barely beat jobs=1. A TrialContext makes that a per-worker cost: it
 * builds the golden once, captures a pristine cycle-0 checkpoint
 * (registers via get_reg, engine counters via sim::CheckpointableModel,
 * peripherals via the target's save_env), and every later trial
 * *restores* that snapshot in place instead of reconstructing.
 *
 * Warmth requires exactly what batched lane-forking requires (the
 * batch.cpp forkable condition): a checkpointable model and either
 * serializable peripherals or no peripherals at all. Anything else is
 * "cold" and transparently falls back to rebuilding through the
 * factory — same results, original cost.
 *
 * The restore contract is the checkpoint subsystem's: registers +
 * extra state + env restore is byte-identical to a fresh build, so
 * reports and coverage stay byte-identical to factory-per-trial runs
 * (enforced by the restore-vs-reconstruct ctest gates). Targets whose
 * engine faulted mid-trial are NEVER reused — release(…, healthy=false)
 * drops them, and poison() drops everything after an escaped exception.
 *
 * Not thread-safe: one TrialContext per pool worker
 * (harness::WorkerContext hooks), living exactly as long as one run()
 * batch.
 */
class TrialContext
{
  public:
    explicit TrialContext(const TargetFactory& factory);

    TrialContext(const TrialContext&) = delete;
    TrialContext& operator=(const TrialContext&) = delete;

    /** Checkpoint-restore available (the batch forkable condition)? */
    bool warm() const { return warm_; }

    /**
     * The worker's golden target, in pristine cycle-0 state: restored
     * in place when warm and previously handed out, rebuilt from the
     * factory otherwise.
     */
    FaultTarget& golden();

    /** A pristine target the caller owns for one trial: a restored
     *  spare when warm, a fresh factory build otherwise. */
    FaultTarget acquire();

    /** Like acquire() but skips the restore — for callers that
     *  overwrite the full state anyway (batch lane forking). */
    FaultTarget acquire_unrestored();

    /**
     * Return a trial's target. Healthy targets become spares for the
     * next acquire (when warm); unhealthy ones — the engine threw on
     * corrupted state and may hold torn internals — are destroyed.
     */
    void release(FaultTarget&& target, bool healthy);

    /** Drop the golden and every spare (after an escaped exception);
     *  subsequent calls rebuild from the factory. */
    void poison();

    /** In-place restores performed (warm-path hits). */
    uint64_t restores() const { return restores_; }
    /** Factory invocations, the constructor's golden included. */
    uint64_t rebuilds() const { return rebuilds_; }

    /**
     * Preallocated previous-cycle counter snapshots for run_injection's
     * detection scan. Context-lifetime so the per-cycle refresh is a
     * same-size element copy, never an allocation (and a campaign's
     * trials stop allocating four vectors each).
     */
    std::vector<uint64_t> gprev, fprev, gprev_r, fprev_r;

  private:
    void restore(FaultTarget& target);

    TargetFactory factory_;
    FaultTarget golden_;
    bool golden_live_ = false;
    /** Golden handed out since its last restore (state may have moved). */
    bool golden_dirty_ = false;
    bool warm_ = false;
    bool has_env_ = false;
    /** Pristine cycle-0 snapshot (valid when warm_). */
    std::vector<Bits> regs0_;
    std::string state_key0_;
    std::string extra0_;
    std::string env0_;
    /** Healthy retired targets awaiting restore-and-reuse. */
    std::vector<FaultTarget> spares_;
    uint64_t restores_ = 0;
    uint64_t rebuilds_ = 0;
};

struct CampaignConfig
{
    uint64_t seed = 1;
    /** Number of injections. */
    int count = 100;
    /** Simulation horizon per injection, in cycles. */
    uint64_t cycles = 1000;
    /** Registers eligible for injection; empty = all. */
    std::vector<int> target_regs;
    /** Also draw stuck-at faults (bit flips only when false). */
    bool stuck_at = true;
    /** Forcing window drawn for stuck-at faults: [1, max]. */
    uint64_t max_stuck_cycles = 8;
    /** Free-form label echoed into the report. */
    std::string label;
    /**
     * Worker threads for run_campaign: 1 = serial, 0 = one per
     * hardware thread. Deliberately NOT echoed into the JSON report:
     * the whole fault list is drawn from `seed` up front and each
     * injection is independent, so the report is byte-identical at any
     * job count (tested: `ctest -R cuttlec_fault_jobs`). The target
     * factory must tolerate concurrent calls when jobs != 1 (anything
     * built from a const Design qualifies).
     */
    int jobs = 1;
    /**
     * Trials per lockstep batch: 1 = scalar (run_injection per fault),
     * N > 1 packs N consecutive injections into one batch that shares
     * a single golden model and forks each faulted lane from the
     * golden's live state at its injection boundary
     * (run_injection_batch). Like `jobs`, deliberately NOT echoed into
     * the JSON report: per-trial records and the coverage database are
     * byte-identical at any lane count (tested: `ctest -L batch`).
     */
    int batch = 1;
    /**
     * Also accumulate a design-coverage database over the campaign's
     * faulted runs (fault campaigns double as coverage-amplifying
     * stimulus: forced bad state exercises guard/conflict paths a clean
     * run never reaches). Per-injection maps are folded in fault-list
     * order after the join, so the database — like the report — is
     * byte-identical at any job count.
     */
    bool collect_coverage = false;
    /**
     * Progress checkpoint for long campaigns: a JSON file
     * (cuttlesim-fault-ckpt-v1) rewritten atomically after each
     * completed chunk of injections. When the file already exists at
     * campaign start and echoes this exact config, the completed
     * prefix of records (and its merged coverage) is loaded instead of
     * re-run, and the campaign continues from there. Deliberately NOT
     * echoed into the report: a resumed campaign produces the same
     * bytes as an uninterrupted one.
     */
    std::string checkpoint_file;
    /** Injections per progress-save chunk (with checkpoint_file). */
    int checkpoint_every = 16;
    /**
     * Live heartbeat for long campaigns: a monitor thread rewrites one
     * stderr line (~1/s) with completed/total injections, trials/sec,
     * ETA, and — when the span profiler is enabled — worker busy
     * percentage. stderr only; the JSON report is unaffected, so the
     * byte-identity contracts above still hold.
     */
    bool progress = false;
};

struct CampaignReport
{
    std::string design;
    /** Engine the campaign ran on ("T5", "T4", ...). */
    std::string engine;
    CampaignConfig config;

    std::vector<InjectionRecord> injections;
    uint64_t masked = 0;
    uint64_t sdc = 0;
    uint64_t detected = 0;

    /** Merged coverage of all faulted runs (config.collect_coverage);
     *  unlabeled — the caller knows which engine ran the campaign and
     *  adds it via coverage.add_engine(). */
    bool has_coverage = false;
    obs::CoverageMap coverage;

    /** Injections loaded from config.checkpoint_file instead of run.
     *  Excluded from to_json (resume must not change the report). */
    uint64_t resumed = 0;

    /**
     * The campaign stopped early at a chunk boundary because a
     * shutdown signal arrived (base/signal.hpp). Completed records up
     * to that boundary are flushed to config.checkpoint_file; the
     * records past it are default-initialized, so an interrupted
     * report must NOT be published as a final artifact — resume the
     * campaign (same flags) and the eventual report is byte-identical
     * to an uninterrupted run.
     */
    bool interrupted = false;

    /**
     * Deterministic report: config echo, per-injection records, and
     * summary counts. Contains no timestamps or wall-clock data, so two
     * runs with the same seed dump byte-identical JSON.
     */
    obs::Json to_json() const;

    /** Short human-readable summary table. */
    std::string to_text() const;

    /**
     * Export outcome counts under `prefix`:
     *   <prefix>/injections, <prefix>/outcome/<masked|sdc|detected>,
     *   <prefix>/kind/<bit_flip|stuck_at_0|stuck_at_1>/<outcome>.
     */
    void export_to(obs::MetricsRegistry& registry,
                   const std::string& prefix) const;
};

/**
 * Draw the campaign's fault list. Deterministic in (design, config):
 * injection cycles are uniform over [1, config.cycles - 1], registers
 * uniform over the eligible set, bits uniform over the register's
 * width. Zero-width registers are never targeted.
 */
std::vector<FaultSpec> generate_faults(const Design& design,
                                       const CampaignConfig& config);

/**
 * Run one injection: golden and faulted targets in lockstep to the
 * horizon, fault applied per `spec`, outcome classified. When
 * `coverage` is non-null it receives the faulted run's coverage map
 * (partial when the engine faulted mid-run), with no engine label.
 */
InjectionRecord run_injection(const Design& design,
                              const TargetFactory& factory,
                              const FaultSpec& spec, uint64_t cycles,
                              obs::CoverageMap* coverage = nullptr);

/**
 * run_injection against a reusable TrialContext: the golden is the
 * context's (restored to cycle 0), the faulted copy is a restored
 * spare when available, and both are returned to the context for the
 * next trial. Record and coverage bytes are identical to the factory
 * overload (the warm-trial contract); the factory overload is in fact
 * a transient-context wrapper around this one.
 */
InjectionRecord run_injection(const Design& design, TrialContext& context,
                              const FaultSpec& spec, uint64_t cycles,
                              obs::CoverageMap* coverage = nullptr);

/**
 * Run `count` injections as one lockstep batch (src/fault/batch.cpp).
 * One golden model is shared by all lanes (every golden run in a
 * campaign is identical); each faulted lane forks from the golden's
 * live state at its injection boundary when the engine supports it
 * (sim::CheckpointableModel plus serializable peripherals), so
 * pre-injection cycles are never re-simulated. Lanes whose engine
 * faults are masked out and skipped for the rest of the batch.
 *
 * `records` receives `count` InjectionRecords and — when `coverage` is
 * non-null — `coverage` receives `count` per-trial maps, all
 * byte-identical to what run_injection would have produced for the
 * same specs. Engines that cannot fork fall back to running their
 * lanes from cycle 0 against the shared golden (slower, still
 * byte-identical).
 */
void run_injection_batch(const Design& design,
                         const TargetFactory& factory,
                         const FaultSpec* specs, size_t count,
                         uint64_t cycles, InjectionRecord* records,
                         obs::CoverageMap* coverage = nullptr);

/**
 * run_injection_batch against a reusable TrialContext: the shared
 * golden is the context's (restored to cycle 0), lanes fork from
 * context spares, and healthy lanes are returned as spares for the
 * worker's next batch. The context's warm() IS the batch's forkable
 * condition, so a cold context degrades to the from-cycle-0 fallback
 * exactly as before. Bytes identical to the factory overload (which
 * wraps this one with a transient context).
 */
void run_injection_batch(const Design& design, TrialContext& context,
                         const FaultSpec* specs, size_t count,
                         uint64_t cycles, InjectionRecord* records,
                         obs::CoverageMap* coverage = nullptr);

/**
 * Run the slice faults[first, first + count) through exactly the
 * scalar / thread-sharded / batched dispatch run_campaign uses, writing
 * into records[0..count) (and coverage[0..count) when non-null; both
 * indexed relative to the slice). This is the unit of work an
 * orchestrator worker executes per leased chunk — sharing it with the
 * in-process paths is what keeps the orchestrated report byte-identical
 * to the single-process run by construction.
 *
 * Returns false when a shutdown signal (base/signal.hpp) interrupted
 * the slice; records past the interruption are default-initialized and
 * must not be published. `before_item` (may be empty) runs at the start
 * of every pool item with its [k, n) sub-slice (k relative to the slice
 * start) — the hook the orchestrator's chaos self-test uses to crash a
 * worker mid-chunk.
 */
bool run_injection_range(
    const Design& design, const TargetFactory& factory,
    const std::vector<FaultSpec>& faults, size_t first, size_t count,
    uint64_t cycles, int jobs, int batch, InjectionRecord* records,
    obs::CoverageMap* coverage = nullptr,
    const std::function<void(uint64_t, uint64_t)>& before_item = {});

/**
 * Run a whole campaign: generate_faults, then run_injection per fault,
 * sharded across config.jobs worker threads (src/harness/parallel.hpp;
 * injections stay in fault-list order, so the report matches a serial
 * run byte for byte). Each pool worker owns one warm TrialContext for
 * the whole campaign (harness per-worker context hooks), so model
 * construction is paid per worker, not per trial. With config.batch >
 * 1, consecutive faults are packed into lockstep batches
 * (run_injection_batch) and each pool worker drives one whole batch;
 * records and coverage land in the same slots, so the report stays
 * byte-identical at any (batch, jobs).
 */
CampaignReport run_campaign(const Design& design,
                            const TargetFactory& factory,
                            const CampaignConfig& config);

/**
 * Convenience factory for closed designs (no stimulus): a tier-style
 * engine built by `make_model` each time.
 */
TargetFactory
closed_target(const std::function<std::unique_ptr<sim::Model>()>& make_model);

// -- Report-assembly helpers (shared with the campaign orchestrator) ---------
//
// Orchestrated multi-process campaigns must produce bytes identical to
// a single-process run. Instead of asking two code paths to agree by
// convention, the serialization of one injection record, the config
// echo, and the final report+metrics assembly are THE functions below,
// used by run_campaign, the checkpoint format, cuttlec, and
// src/orchestrate alike.

/** One injection record as it appears in reports, checkpoints, and
 *  orchestrator chunk files (index = position in the fault list). */
obs::Json injection_to_json(size_t index, const InjectionRecord& rec);

/** Inverse of injection_to_json; FatalError on missing fields. */
InjectionRecord injection_from_json(const obs::Json& e);

/** The `config` block reports and checkpoints echo: seed, count,
 *  cycles, stuck_at, max_stuck_cycles (exactly the fields that change
 *  what gets injected). */
obs::Json campaign_config_echo(const CampaignConfig& config);

/** The metrics registry a standalone campaign exports: outcome counts
 *  under "fault/<design>" (see CampaignReport::export_to). */
obs::MetricsRegistry campaign_metrics(const CampaignReport& report);

/**
 * The full fault-report JSON artifact cuttlec writes for
 * --fault-report=: report.to_json() plus the `metrics` block and — for
 * coverage-collecting campaigns — the coverage summary. Byte-identical
 * inputs produce byte-identical artifacts, whichever process (or how
 * many) ran the injections.
 */
obs::Json campaign_report_json(const CampaignReport& report,
                               const obs::MetricsRegistry& metrics);

} // namespace koika::fault
