/**
 * @file
 * Batched (SIMD-across-trials) execution of fault injections.
 *
 * run_injection steps TWO models per trial — a golden reference and
 * the faulted copy — for the full horizon. Across a campaign every
 * golden run is identical (the factory is deterministic and the golden
 * copy never sees a fault), and every faulted run is identical to its
 * golden run UP TO the injection boundary. A batch exploits both
 * redundancies:
 *
 *   - one shared golden model advances once per cycle for all N lanes,
 *     and its per-cycle abort-count deltas and register snapshot are
 *     computed once and reused by every lane's detection/divergence
 *     scan;
 *   - each lane forks from the golden's live state at its injection
 *     boundary: registers through get_reg/set_reg, engine counters and
 *     coverage arrays through sim::CheckpointableModel, peripherals
 *     through the target's save_env/load_env, and toggle accumulators
 *     through obs::CoverageCollector::save_state — so pre-injection
 *     cycles are never re-simulated;
 *   - lanes that finish early (the engine faulted on corrupted state)
 *     are masked out GPU-warp style and skipped for the rest of the
 *     batch.
 *
 * Scalar cost per trial is 2*C model-cycles. Batched cost is C/N for
 * the shared golden plus C - spec.cycle for the lane's post-injection
 * suffix (C/2 on average over a uniform fault list) — the source of
 * bench_batch's >= 4x aggregate trials/sec. The records and coverage
 * maps are byte-identical to run_injection's at any lane count: the
 * per-cycle order of events (advance, detection scan, divergence scan,
 * inject/re-force at the boundary) is exactly run_injection's, the
 * forked state is exactly the state the scalar faulted run reaches at
 * the same boundary, and the collector samples at the same points.
 * Engines that are not checkpointable — or targets whose peripherals
 * cannot be serialized — fall back to running their lanes from cycle 0
 * against the shared golden: slower, still byte-identical.
 */
#include <memory>
#include <optional>
#include <vector>

#include "fault/fault.hpp"
#include "obs/prof.hpp"

namespace koika::fault {

namespace {

void
force_bit(sim::Model& model, int reg, uint32_t bit, bool value)
{
    model.set_reg(reg, model.get_reg(reg).with_bit(bit, value));
}

void
flip_bit(sim::Model& model, int reg, uint32_t bit)
{
    Bits v = model.get_reg(reg);
    model.set_reg(reg, v.with_bit(bit, !v.bit(bit)));
}

void
inject(sim::Model& model, const FaultSpec& spec)
{
    switch (spec.kind) {
      case FaultKind::kBitFlip:
        flip_bit(model, spec.reg, spec.bit);
        break;
      case FaultKind::kStuckAt0:
        force_bit(model, spec.reg, spec.bit, false);
        break;
      case FaultKind::kStuckAt1:
        force_bit(model, spec.reg, spec.bit, true);
        break;
    }
}

/** One trial instance advancing in lockstep with the shared golden. */
struct Lane
{
    FaultSpec spec;
    InjectionRecord rec;

    /** Live once the lane has its own model (fallback lanes from cycle
     *  0, forked lanes from their injection boundary). */
    FaultTarget target;
    bool live = false;
    /** Masked out (engine fault); skipped for the rest of the batch. */
    bool masked = false;
    /** Never instantiated: the fault never fires within the horizon,
     *  so the lane is the golden run by definition. */
    bool shadow = false;
    /** Runs from cycle 0 instead of forking at the boundary. */
    bool from_start = false;

    bool injected = false;
    bool engine_fault = false;

    sim::RuleStatsModel* stats = nullptr;
    std::unique_ptr<obs::CoverageCollector> collector;
    std::vector<uint64_t> fprev, fprev_r;
};

/** The batch body; callers wrap it to guarantee context poisoning on an
 *  escaped exception. */
void
run_injection_batch_in(const Design& design, TrialContext& ctx,
                       const FaultSpec* specs, size_t count,
                       uint64_t cycles, InjectionRecord* records,
                       obs::CoverageMap* coverage)
{
    // -- Pack: the shared golden plus the lanes that cannot fork ------------
    std::optional<obs::ProfScope> pack_span;
    pack_span.emplace("batch/pack");

    // The context's golden arrives in pristine cycle-0 state: freshly
    // built on the worker's first batch, restored in place afterwards.
    FaultTarget& golden = ctx.golden();
    auto* gstats = dynamic_cast<sim::RuleStatsModel*>(golden.model.get());
    auto* gckpt =
        dynamic_cast<sim::CheckpointableModel*>(golden.model.get());
    // Forking needs the engine's auxiliary state (counters, coverage
    // arrays) and the peripherals' state to be serializable; a target
    // with live peripherals (context) but no env hooks cannot move
    // them, so its lanes run from cycle 0 instead. ctx.warm() is this
    // exact condition evaluated on the same factory's output.
    bool forkable = ctx.warm();

    // The golden's collector exists to seed forked lanes (its state at
    // any boundary is exactly what a faulted run's collector holds
    // there) and to stand in for never-injected shadow lanes. Sampling
    // it every cycle mirrors the scalar faulted run's sampling points.
    std::unique_ptr<obs::CoverageCollector> gcollector;
    if (coverage != nullptr)
        gcollector = std::make_unique<obs::CoverageCollector>(
            design, *golden.model);

    size_t nregs = design.num_registers();
    std::vector<Lane> lanes(count);
    for (size_t l = 0; l < count; ++l) {
        const FaultSpec& spec = specs[l];
        KOIKA_CHECK(spec.reg >= 0 &&
                    (size_t)spec.reg < design.num_registers());
        Lane& lane = lanes[l];
        lane.spec = spec;
        lane.rec.spec = spec;
        lane.rec.reg_name = design.reg(spec.reg).name;
        if (forkable && spec.cycle >= cycles) {
            lane.shadow = true;
        } else if (!forkable) {
            lane.from_start = true;
            lane.target = ctx.acquire();
            lane.live = true;
            lane.stats = dynamic_cast<sim::RuleStatsModel*>(
                lane.target.model.get());
            if (coverage != nullptr)
                lane.collector =
                    std::make_unique<obs::CoverageCollector>(
                        design, *lane.target.model);
            if (gstats != nullptr && lane.stats != nullptr) {
                lane.fprev = lane.stats->rule_abort_counts();
                lane.fprev_r = lane.stats->rule_abort_reason_counts();
            }
        }
    }
    pack_span.reset();

    // Fork one lane off the golden's live state at the current cycle
    // boundary. The copied state is byte-for-byte the state the scalar
    // faulted run holds at the same boundary: identical registers,
    // identical counters/coverage (identical fault-free history), and
    // identical peripherals.
    auto fork_lane = [&](Lane& lane) {
        // No restore: every field copied below overwrites the spare's
        // full state (registers, extra state, env, collector).
        lane.target = ctx.acquire_unrestored();
        lane.live = true;
        for (size_t r = 0; r < nregs; ++r)
            lane.target.model->set_reg(
                (int)r, golden.model->get_reg((int)r));
        auto* lckpt = dynamic_cast<sim::CheckpointableModel*>(
            lane.target.model.get());
        KOIKA_CHECK(lckpt != nullptr &&
                    lckpt->state_key() == gckpt->state_key());
        {
            sim::StateWriter w;
            gckpt->save_extra_state(w);
            std::string bytes = w.take();
            sim::StateReader r(bytes);
            lckpt->load_extra_state(r);
        }
        if (golden.save_env != nullptr) {
            sim::StateWriter w;
            golden.save_env(w);
            std::string bytes = w.take();
            sim::StateReader r(bytes);
            lane.target.load_env(r);
        }
        if (coverage != nullptr) {
            // After the model restore: the collector's constructor
            // re-snapshots register state for toggle detection.
            lane.collector = std::make_unique<obs::CoverageCollector>(
                design, *lane.target.model);
            sim::StateWriter w;
            gcollector->save_state(w);
            std::string bytes = w.take();
            sim::StateReader r(bytes);
            lane.collector->load_state(r);
        }
        lane.stats = dynamic_cast<sim::RuleStatsModel*>(
            lane.target.model.get());
        if (gstats != nullptr && lane.stats != nullptr) {
            lane.fprev = lane.stats->rule_abort_counts();
            lane.fprev_r = lane.stats->rule_abort_reason_counts();
        }
    };

    // Per-cycle golden abort deltas, shared by every lane's scan.
    std::vector<uint64_t> gprev, gprev_r, gdelta, gdelta_r;
    if (gstats != nullptr) {
        gprev = gstats->rule_abort_counts();
        gprev_r = gstats->rule_abort_reason_counts();
        gdelta.assign(gprev.size(), 0);
        gdelta_r.assign(gprev_r.size(), 0);
    }
    std::vector<Bits> gregs(nregs);

    // -- Step: golden once per cycle, live lanes in lockstep ----------------
    for (uint64_t c = 0; c < cycles; ++c) {
        {
            obs::ProfScope step_span("batch/step");
            golden.model->cycle();
            if (golden.stimulus)
                golden.stimulus(*golden.model, c);
            if (gcollector != nullptr)
                gcollector->sample();
            if (gstats != nullptr) {
                const auto& g = gstats->rule_abort_counts();
                const auto& gr = gstats->rule_abort_reason_counts();
                for (size_t r = 0; r < g.size(); ++r)
                    gdelta[r] = g[r] - gprev[r];
                for (size_t i = 0; i < gr.size(); ++i)
                    gdelta_r[i] = gr[i] - gprev_r[i];
                gprev = g;
                gprev_r = gr;
            }

            // Snapshot the golden's registers once per cycle, only
            // when some lane's divergence scan (or injection boundary)
            // still needs them.
            bool need_regs = false;
            for (const Lane& lane : lanes)
                if (lane.live && !lane.masked && lane.injected &&
                    !lane.rec.diverged)
                    need_regs = true;
            if (need_regs)
                for (size_t r = 0; r < nregs; ++r)
                    gregs[r] = golden.model->get_reg((int)r);

            for (Lane& lane : lanes) {
                if (!lane.live || lane.masked)
                    continue;
                try {
                    lane.target.model->cycle();
                    if (lane.target.stimulus)
                        lane.target.stimulus(*lane.target.model, c);
                    if (lane.collector != nullptr)
                        lane.collector->sample();
                } catch (const std::exception& e) {
                    // The engine itself tripped over the corrupted
                    // state — the strongest form of detection. Mask
                    // the lane out for the rest of the batch.
                    lane.rec.detected = true;
                    lane.rec.detect_cycle = c;
                    lane.rec.detect_detail =
                        std::string("engine fault: ") + e.what();
                    lane.engine_fault = true;
                    lane.masked = true;
                    continue;
                }

                // Detection: a rule aborted more often than in the
                // golden run during the same cycle (run_injection's
                // scan, against the shared golden deltas).
                bool track = gstats != nullptr && lane.stats != nullptr;
                if (track && lane.injected && !lane.rec.detected) {
                    const auto& f = lane.stats->rule_abort_counts();
                    for (size_t r = 0;
                         r < gdelta.size() && r < f.size(); ++r) {
                        uint64_t gd = gdelta[r];
                        uint64_t fd = f[r] - lane.fprev[r];
                        if (fd <= gd)
                            continue;
                        lane.rec.detected = true;
                        lane.rec.detect_cycle = c;
                        std::string reason = "abort";
                        const auto& fr =
                            lane.stats->rule_abort_reason_counts();
                        for (int k = 0; k < sim::kNumAbortReasons;
                             ++k) {
                            size_t idx =
                                r * (size_t)sim::kNumAbortReasons +
                                (size_t)k;
                            if (idx >= gdelta_r.size() ||
                                idx >= fr.size())
                                break;
                            if (fr[idx] - lane.fprev_r[idx] >
                                gdelta_r[idx]) {
                                reason =
                                    std::string(sim::abort_reason_name(
                                        (sim::AbortReason)k)) +
                                    " abort";
                                break;
                            }
                        }
                        lane.rec.detect_detail =
                            "rule '" + gstats->rule_name((int)r) +
                            "': excess " + reason;
                        break;
                    }
                }
                if (track) {
                    lane.fprev = lane.stats->rule_abort_counts();
                    lane.fprev_r =
                        lane.stats->rule_abort_reason_counts();
                }

                // Divergence scan before (re-)forcing, so it measures
                // what the fault propagated into, not the forced bit.
                if (lane.injected && !lane.rec.diverged) {
                    for (size_t r = 0; r < nregs; ++r) {
                        if (lane.target.model->get_reg((int)r) !=
                            gregs[r]) {
                            lane.rec.diverged = true;
                            lane.rec.first_divergence_cycle = c;
                            lane.rec.first_divergence_reg = (int)r;
                            break;
                        }
                    }
                }
            }
        }

        // Injection boundary: after cycle c committed (and its
        // stimulus ran), before the next cycle starts. Forked lanes
        // come to life here; stuck-at faults re-assert their forced
        // bit for stuck_cycles consecutive boundaries.
        std::optional<obs::ProfScope> fork_span;
        for (Lane& lane : lanes) {
            if (lane.shadow || lane.masked)
                continue;
            if (c == lane.spec.cycle) {
                if (!lane.live) {
                    fork_span.emplace("batch/pack");
                    fork_lane(lane);
                    fork_span.reset();
                }
                inject(*lane.target.model, lane.spec);
                lane.injected = true;
            } else if (lane.injected &&
                       lane.spec.kind != FaultKind::kBitFlip &&
                       c > lane.spec.cycle &&
                       c < lane.spec.cycle + lane.spec.stuck_cycles) {
                force_bit(*lane.target.model, lane.spec.reg,
                          lane.spec.bit,
                          lane.spec.kind == FaultKind::kStuckAt1);
            }
        }
    }

    // -- Unpack: per-trial classification and coverage ----------------------
    obs::ProfScope unpack_span("batch/unpack");
    for (size_t r = 0; r < nregs; ++r)
        gregs[r] = golden.model->get_reg((int)r);
    for (size_t l = 0; l < count; ++l) {
        Lane& lane = lanes[l];
        InjectionRecord& rec = lane.rec;
        if (lane.shadow) {
            // The fault never fired: the lane IS the golden run.
            rec.final_state_matches = true;
        } else if (!lane.engine_fault) {
            rec.final_state_matches = true;
            for (size_t r = 0; r < nregs; ++r) {
                if (lane.target.model->get_reg((int)r) != gregs[r]) {
                    rec.final_state_matches = false;
                    if (!rec.diverged) {
                        rec.diverged = true;
                        rec.first_divergence_cycle = cycles;
                        rec.first_divergence_reg = (int)r;
                    }
                    break;
                }
            }
        }
        if (rec.detected)
            rec.outcome = Outcome::kDetected;
        else if (!rec.final_state_matches)
            rec.outcome = Outcome::kSilentDataCorruption;
        else
            rec.outcome = Outcome::kMasked;
        if (coverage != nullptr)
            coverage[l] = lane.shadow ? gcollector->take("")
                                      : lane.collector->take("");
        records[l] = rec;
        // Retire the lane's model into the context's spare pool so the
        // next batch (or scalar trial) on this worker reuses it via
        // restore. Engine-faulted lanes may hold torn state — destroy.
        if (lane.live)
            ctx.release(std::move(lane.target), !lane.engine_fault);
    }
}

} // namespace

void
run_injection_batch(const Design& design, TrialContext& context,
                    const FaultSpec* specs, size_t count,
                    uint64_t cycles, InjectionRecord* records,
                    obs::CoverageMap* coverage)
{
    try {
        run_injection_batch_in(design, context, specs, count, cycles,
                               records, coverage);
    } catch (...) {
        // Escaped exceptions (engine faults are handled per lane; this
        // is a harness/setup failure) may leave the golden or spares
        // mid-cycle — drop them so the next batch rebuilds cleanly.
        context.poison();
        throw;
    }
}

void
run_injection_batch(const Design& design, const TargetFactory& factory,
                    const FaultSpec* specs, size_t count,
                    uint64_t cycles, InjectionRecord* records,
                    obs::CoverageMap* coverage)
{
    TrialContext context(factory);
    run_injection_batch(design, context, specs, count, cycles, records,
                        coverage);
}

} // namespace koika::fault
