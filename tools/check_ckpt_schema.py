#!/usr/bin/env python3
"""Validate cuttlesim-ckpt-v1 checkpoint files and debugger spill streams.

The binary format (src/replay/checkpoint.cpp, documented field by field
in EXPERIMENTS.md) is:

    "CKPT"                        4-byte magic
    version                       u32 LE, currently 1
    header_len                    u32 LE
    header                        compact JSON descriptor: schema,
                                  design, fingerprint (64 hex chars),
                                  cycle, widths, sections [{name,size}]
    register payload              per register, ceil(width/64) words of
                                  8 bytes LE; bits above the declared
                                  width must be zero (canonical form)
    section payloads              concatenated, sizes from the directory
    checksum                      64 lowercase hex chars: SHA-256 over
                                  everything before it

A debugger spill stream (harness::Debugger::enable_spill) is a file of
consecutive [u64 LE record length][checkpoint record] entries; streams
are detected automatically and every record is validated.

This checker is the executable form of that schema: ctest runs it over
checkpoints the CLI writes (label: replay), so a drifting writer fails
the suite instead of silently producing unrestorable files.

Usage: check_ckpt_schema.py FILE.ckpt [FILE.ckpt ...]
       check_ckpt_schema.py --self-test
Exits 0 when every file validates; prints one line per problem.
"""

import hashlib
import json
import struct
import sys

MAGIC = b"CKPT"
VERSION = 1
CHECKSUM_LEN = 64
SCHEMA = "cuttlesim-ckpt-v1"


def validate_record(problems, where, data):
    """Validate one cuttlesim-ckpt-v1 record; append problems found."""
    before = len(problems)

    def err(msg):
        problems.append(f"{where}: {msg}")

    if len(data) < len(MAGIC) + 8 + CHECKSUM_LEN:
        err("too short to be a checkpoint")
        return False
    if data[:4] != MAGIC:
        err("bad magic (not a cuttlesim-ckpt file)")
        return False
    version = struct.unpack_from("<I", data, 4)[0]
    if version != VERSION:
        err(f"unsupported format version {version}")
        return False

    body, checksum = data[:-CHECKSUM_LEN], data[-CHECKSUM_LEN:]
    if hashlib.sha256(body).hexdigest().encode("ascii") != checksum:
        err("checksum mismatch: corrupted or modified after writing")
        return False

    header_len = struct.unpack_from("<I", data, 8)[0]
    pos = len(MAGIC) + 8
    if pos + header_len > len(body):
        err("descriptor extends past end of file")
        return False
    try:
        header = json.loads(body[pos:pos + header_len])
    except (UnicodeDecodeError, json.JSONDecodeError) as e:
        err(f"unparseable descriptor: {e}")
        return False
    pos += header_len

    if not isinstance(header, dict):
        err("descriptor must be a JSON object")
        return False
    if header.get("schema") != SCHEMA:
        err(f"descriptor schema must be '{SCHEMA}', got "
            f"{header.get('schema')!r}")
    for key in ("design", "fingerprint"):
        if not isinstance(header.get(key), str):
            err(f"descriptor field '{key}' must be a string")
    fp = header.get("fingerprint", "")
    if isinstance(fp, str) and (len(fp) != 64 or
                                any(c not in "0123456789abcdef"
                                    for c in fp)):
        err("fingerprint must be 64 lowercase hex chars (SHA-256)")
    if not isinstance(header.get("cycle"), int) or \
            isinstance(header.get("cycle"), bool):
        err("descriptor field 'cycle' must be an integer")
    widths = header.get("widths")
    if not isinstance(widths, list) or \
            any(not isinstance(w, int) or isinstance(w, bool) or w < 0
                for w in widths):
        err("descriptor field 'widths' must be an array of "
            "non-negative integers")
        widths = []
    sections = header.get("sections")
    if not isinstance(sections, list):
        err("descriptor field 'sections' must be an array")
        sections = []

    for w in widths:
        nwords = (w + 63) // 64
        if pos + 8 * nwords > len(body):
            err("register payload extends past end of file")
            return False
        if nwords and w % 64 != 0:
            top = struct.unpack_from("<Q", body,
                                     pos + 8 * (nwords - 1))[0]
            if top >> (w % 64) != 0:
                err(f"non-canonical register payload: bits set above "
                    f"declared width {w}")
        pos += 8 * nwords

    for i, entry in enumerate(sections):
        if not isinstance(entry, dict) or \
                not isinstance(entry.get("name"), str) or \
                not isinstance(entry.get("size"), int) or \
                isinstance(entry.get("size"), bool) or \
                entry["size"] < 0:
            err(f"malformed section directory entry [{i}]")
            return False
        if pos + entry["size"] > len(body):
            err(f"section '{entry['name']}' extends past end of file")
            return False
        pos += entry["size"]

    if pos != len(body):
        err(f"{len(body) - pos} trailing byte(s) after last section")
    return len(problems) == before


def looks_like_spill_stream(data):
    """[u64 LE length][record] entries: magic shows up 8 bytes in."""
    return (len(data) >= 12 and data[:4] != MAGIC and
            data[8:12] == MAGIC)


def check_file(problems, path):
    try:
        with open(path, "rb") as f:
            data = f.read()
    except OSError as e:
        problems.append(f"{path}: unreadable: {e}")
        return

    if not looks_like_spill_stream(data):
        validate_record(problems, path, data)
        return

    pos, index = 0, 0
    while pos < len(data):
        if len(data) - pos < 8:
            problems.append(f"{path}: spill stream: truncated record "
                            f"length at offset {pos}")
            return
        (length,) = struct.unpack_from("<Q", data, pos)
        pos += 8
        if len(data) - pos < length:
            problems.append(f"{path}: spill stream: record [{index}] "
                            f"truncated")
            return
        validate_record(problems, f"{path} record [{index}]",
                        data[pos:pos + length])
        pos += length
        index += 1
    if index == 0:
        problems.append(f"{path}: spill stream holds no records")


def build_test_record(design="probe", cycle=7, widths=(8, 65),
                      sections=(("engine:tier-v1", b"\x01\x02\x03"),)):
    header = {
        "schema": SCHEMA,
        "design": design,
        "fingerprint": "ab" * 32,
        "cycle": cycle,
        "widths": list(widths),
        "sections": [{"name": n, "size": len(b)} for n, b in sections],
    }
    hdr = json.dumps(header, separators=(",", ":")).encode("ascii")
    out = MAGIC + struct.pack("<II", VERSION, len(hdr)) + hdr
    for w in widths:
        out += b"\x00" * (8 * ((w + 63) // 64))
    for _, b in sections:
        out += b
    return out + hashlib.sha256(out).hexdigest().encode("ascii")


def self_test():
    ok = build_test_record()
    problems = []
    validate_record(problems, "valid", ok)
    if problems:
        print("self-test: pristine record failed validation:")
        for p in problems:
            print(f"  {p}")
        return 1

    stream = b""
    for _ in range(3):
        stream += struct.pack("<Q", len(ok)) + ok
    problems = []
    check = []
    if not looks_like_spill_stream(stream):
        check.append("spill stream not detected")
    pos = 0
    check_file_problems = []
    # Reuse the stream walker through a temp-free path: validate inline.
    index = 0
    while pos < len(stream):
        (length,) = struct.unpack_from("<Q", stream, pos)
        pos += 8
        validate_record(check_file_problems, f"record [{index}]",
                        stream[pos:pos + length])
        pos += length
        index += 1
    if check_file_problems or index != 3:
        check.append("valid spill stream failed validation")
    if check:
        for c in check:
            print(f"self-test: {c}")
        return 1

    def corrupt(label, data):
        p = []
        if validate_record(p, label, data):
            print(f"self-test: corruption not detected: {label}")
            return False
        return True

    flipped = bytearray(ok)
    flipped[len(flipped) // 2] ^= 0x40
    noncanon = bytearray(ok)
    # First register is 8 bits wide: set a bit above it in its word.
    hdr_len = struct.unpack_from("<I", ok, 8)[0]
    reg0 = len(MAGIC) + 8 + hdr_len
    noncanon[reg0 + 2] = 0xFF
    body = bytes(noncanon[:-CHECKSUM_LEN])
    noncanon[-CHECKSUM_LEN:] = \
        hashlib.sha256(body).hexdigest().encode("ascii")
    cases = [
        ("bad magic", b"XKPT" + ok[4:]),
        ("bad version", ok[:4] + struct.pack("<I", 9) + ok[8:]),
        ("flipped byte", bytes(flipped)),
        ("truncated", ok[:len(ok) // 2]),
        ("truncated checksum", ok[:-5]),
        ("non-canonical register bits", bytes(noncanon)),
    ]
    if not all(corrupt(label, data) for label, data in cases):
        return 1
    print("self-test: cuttlesim-ckpt-v1 validator detects all "
          f"{len(cases)} corruption cases")
    return 0


def main(argv):
    if len(argv) == 2 and argv[1] == "--self-test":
        return self_test()
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    problems = []
    for path in argv[1:]:
        check_file(problems, path)
    for p in problems:
        print(p)
    if not problems:
        print(f"{len(argv) - 1} checkpoint file(s) validate against "
              f"{SCHEMA}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
