#!/usr/bin/env python3
"""Validate BENCH_*.json files against the cuttlesim-bench-v1 schema.

Every bench binary (bench/bench_util.hpp, BenchReport::write) emits one
BENCH_<name>.json; this checker is the executable form of the schema
documented in EXPERIMENTS.md ("The bench report schema"). ctest runs it
over each smoke-mode bench run (label: bench-smoke), so a drifting
writer fails the suite instead of silently producing unparseable
results.

Usage: check_bench_schema.py FILE.json [FILE.json ...]
Exits 0 when every file validates; prints one line per problem.
"""

import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import check_prof_schema  # the embedded `prof` block is cuttlesim-prof-v1


def err(problems, path, msg):
    problems.append(f"{path}: {msg}")


def check_number(problems, path, obj, key, required=True):
    if key not in obj:
        if required:
            err(problems, path, f"missing numeric field '{key}'")
        return
    if isinstance(obj[key], bool) or not isinstance(obj[key], (int, float)):
        err(problems, path, f"field '{key}' must be a number, got "
                            f"{type(obj[key]).__name__}")


def check_string(problems, path, obj, key, required=True):
    if key not in obj:
        if required:
            err(problems, path, f"missing string field '{key}'")
        return
    if not isinstance(obj[key], str):
        err(problems, path, f"field '{key}' must be a string")


def check_entry(problems, path, i, entry):
    where = f"{path} entries[{i}]"
    if not isinstance(entry, dict):
        err(problems, where, "entry must be an object")
        return
    check_string(problems, where, entry, "label")
    check_string(problems, where, entry, "engine")
    check_number(problems, where, entry, "cycles")
    check_number(problems, where, entry, "wall_seconds")
    check_number(problems, where, entry, "cycles_per_sec")
    # Optional blocks: per-rule counters and engine-specific extras.
    if "rules" in entry:
        if not isinstance(entry["rules"], list):
            err(problems, where, "'rules' must be an array")
        else:
            for j, rule in enumerate(entry["rules"]):
                rwhere = f"{where} rules[{j}]"
                if not isinstance(rule, dict):
                    err(problems, rwhere, "rule must be an object")
                    continue
                check_string(problems, rwhere, rule, "name")
                check_number(problems, rwhere, rule, "commits")
                check_number(problems, rwhere, rule, "aborts")
                if "abort_reasons" in rule:
                    reasons = rule["abort_reasons"]
                    if not isinstance(reasons, dict):
                        err(problems, rwhere,
                            "'abort_reasons' must be an object")
                    else:
                        for key in ("guard", "read_conflict",
                                    "write_conflict"):
                            check_number(problems, rwhere, reasons, key)
    if "extra" in entry and not isinstance(entry["extra"], dict):
        err(problems, where, "'extra' must be an object")


def check_host(problems, path, host):
    """The `host` block: which machine/toolchain produced the numbers."""
    where = f"{path} host"
    if not isinstance(host, dict):
        err(problems, where, "'host' must be an object "
                             "(bench_util.hpp host_json)")
        return
    check_string(problems, where, host, "compiler")
    check_string(problems, where, host, "cache_dir")
    check_number(problems, where, host, "hw_concurrency")
    check_number(problems, where, host, "cache_entries")
    for key in ("cache_enabled", "smoke"):
        if not isinstance(host.get(key), bool):
            err(problems, where, f"field '{key}' must be a boolean")


def check_batch(problems, path, root):
    """Extra contract for BENCH_batch.json (bench == "batch"): the
    scalar baseline and at least one batched entry must both be
    present, every entry must say how many lanes it ran and its
    speedup over scalar, and the headline batch.* gauges must be in
    the metrics block."""
    where = f"{path} (bench=batch)"
    entries = root.get("entries") or []
    labels = [e.get("label", "") for e in entries
              if isinstance(e, dict)]
    if not any("scalar" in label for label in labels):
        err(problems, where, "no scalar baseline entry "
                             "(label containing 'scalar')")
    if not any("batched" in label for label in labels):
        err(problems, where, "no batched entry "
                             "(label containing 'batched')")
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict):
            continue
        ewhere = f"{where} entries[{i}]"
        extra = entry.get("extra")
        if not isinstance(extra, dict):
            err(problems, ewhere, "batch entries need an 'extra' block")
            continue
        check_number(problems, ewhere, extra, "lanes")
        check_number(problems, ewhere, extra, "jobs")
        check_number(problems, ewhere, extra, "trials_per_sec")
        check_number(problems, ewhere, extra, "speedup_vs_scalar")
        lanes = extra.get("lanes")
        if isinstance(lanes, (int, float)) and not isinstance(lanes, bool) \
                and lanes < 1:
            err(problems, ewhere, f"'lanes' must be >= 1, got {lanes}")
    gauges = (root.get("metrics") or {}).get("gauges")
    if not isinstance(gauges, dict):
        err(problems, where, "metrics block has no gauges")
        return
    for key in ("batch.lanes", "batch.speedup_single",
                "batch.speedup_aggregate"):
        check_number(problems, f"{where} metrics gauges", gauges, key)


def check_file(problems, path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            root = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        err(problems, path, f"unreadable or invalid JSON: {e}")
        return
    if not isinstance(root, dict):
        err(problems, path, "root must be an object")
        return
    if root.get("schema") != "cuttlesim-bench-v1":
        err(problems, path,
            f"schema tag must be 'cuttlesim-bench-v1', got "
            f"{root.get('schema')!r}")
    check_string(problems, path, root, "bench")
    entries = root.get("entries")
    if not isinstance(entries, list):
        err(problems, path, "'entries' must be an array")
        return
    if not entries:
        err(problems, path, "'entries' is empty — the bench recorded "
                            "nothing")
    for i, entry in enumerate(entries):
        check_entry(problems, path, i, entry)
    check_host(problems, path, root.get("host"))
    # `prof` is optional (KOIKA_BENCH_NO_PROF=1 suppresses it) but must
    # be a valid cuttlesim-prof-v1 report when present.
    if "prof" in root:
        check_prof_schema.validate(problems, f"{path} prof", root["prof"])
    metrics = root.get("metrics")
    if not isinstance(metrics, dict):
        err(problems, path, "'metrics' must be an object "
                            "(MetricsRegistry::to_json)")
    if root.get("bench") == "batch":
        check_batch(problems, path, root)


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    problems = []
    for path in argv[1:]:
        check_file(problems, path)
    for p in problems:
        print(p)
    if not problems:
        print(f"{len(argv) - 1} bench report(s) validate against "
              f"cuttlesim-bench-v1")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
