#!/usr/bin/env python3
"""Validate cuttlesim-orch-v1 orchestrated-campaign reports.

The crash-resilient campaign orchestrator (src/orchestrate/, documented
field by field in EXPERIMENTS.md) writes DIR/orchestrate.json:

    schema          "cuttlesim-orch-v1"
    design, engine  what ran
    config          the fault-campaign config echo (same shape as the
                    single-process cuttlesim-fault-v1 report's)
    orchestration   {workers, chunk_size, worker_timeout_seconds,
                    max_retries, chaos} — supervision knobs
    chunks          {total, completed, failed}, total = completed+failed
                    = ceil(config.count / orchestration.chunk_size)
    summary         {injections, masked, sdc, detected, missing};
                    injections + missing = config.count and the three
                    outcome counts sum to injections
    incomplete      present iff anything failed: {failed_chunks,
                    missing_injections}, counts matching the summary
    report          the merged fault report — byte-identical to the
                    --jobs=1 single-process report when complete; its
                    per-injection outcomes must re-tally to the summary
    metrics         registry dump; fault/<design>/outcome/* and
                    orch/chunks_* must agree with the summary/chunks
    wall_seconds    supervisor wall time

This checker is the executable form of those invariants: ctest runs it
over reports the CLI writes (label: orch), so a drifting writer — or a
merge that fabricates, drops, or double-counts records — fails the
suite instead of silently shipping a wrong campaign verdict.

Usage: check_orch_schema.py FILE.json [FILE.json ...]
       check_orch_schema.py --self-test
Exits 0 when every file validates; prints one line per problem.
"""

import json
import math
import sys

SCHEMA = "cuttlesim-orch-v1"

CONFIG_FIELDS = ("seed", "count", "cycles", "stuck_at",
                 "max_stuck_cycles")
ORCH_FIELDS = ("workers", "chunk_size", "worker_timeout_seconds",
               "max_retries", "chaos")
OUTCOMES = ("masked", "sdc", "detected")


def is_number(v):
    return not isinstance(v, bool) and isinstance(v, (int, float))


def is_count(v):
    return not isinstance(v, bool) and isinstance(v, int) and v >= 0


def validate(problems, where, root):
    """Validate one parsed cuttlesim-orch-v1 report."""
    before = len(problems)

    def err(msg):
        problems.append(f"{where}: {msg}")

    if not isinstance(root, dict):
        err("root must be an object")
        return False
    if root.get("schema") != SCHEMA:
        err(f"schema tag must be '{SCHEMA}', got {root.get('schema')!r}")
    for field in ("design", "engine"):
        if not isinstance(root.get(field), str) or not root.get(field):
            err(f"'{field}' must be a non-empty string")
    if not is_number(root.get("wall_seconds")) or \
            root.get("wall_seconds", -1) < 0:
        err("'wall_seconds' must be a non-negative number")

    config = root.get("config")
    if not isinstance(config, dict):
        err("'config' must be an object (campaign config echo)")
        config = {}
    for field in CONFIG_FIELDS:
        if field not in config:
            err(f"config.{field} missing")
    count = config.get("count")
    if not is_count(count):
        err("config.count must be a non-negative integer")
        count = None

    orch = root.get("orchestration")
    if not isinstance(orch, dict):
        err("'orchestration' must be an object")
        orch = {}
    for field in ORCH_FIELDS:
        if field not in orch:
            err(f"orchestration.{field} missing")
    for field in ("workers", "chunk_size"):
        if field in orch and (not is_count(orch[field]) or
                              orch[field] < 1):
            err(f"orchestration.{field} must be a positive integer")
    if "chaos" in orch and (not is_number(orch["chaos"]) or
                            not 0 <= orch["chaos"] <= 1):
        err("orchestration.chaos must be a number in [0, 1]")

    chunks = root.get("chunks")
    if not isinstance(chunks, dict):
        err("'chunks' must be an object")
        chunks = {}
    for field in ("total", "completed", "failed"):
        if not is_count(chunks.get(field)):
            err(f"chunks.{field} must be a non-negative integer")
    if all(is_count(chunks.get(f)) for f in ("total", "completed",
                                             "failed")):
        if chunks["total"] != chunks["completed"] + chunks["failed"]:
            err(f"chunks.total ({chunks['total']}) != completed "
                f"({chunks['completed']}) + failed ({chunks['failed']})")
        if count is not None and is_count(orch.get("chunk_size")) and \
                orch["chunk_size"] >= 1 and \
                chunks["total"] != math.ceil(count / orch["chunk_size"]):
            err(f"chunks.total ({chunks['total']}) != "
                f"ceil(config.count / orchestration.chunk_size) "
                f"({math.ceil(count / orch['chunk_size'])})")

    summary = root.get("summary")
    if not isinstance(summary, dict):
        err("'summary' must be an object")
        summary = {}
    for field in ("injections", "missing") + OUTCOMES:
        if not is_count(summary.get(field)):
            err(f"summary.{field} must be a non-negative integer")
    have_summary = all(is_count(summary.get(f))
                       for f in ("injections", "missing") + OUTCOMES)
    if have_summary:
        if count is not None and \
                summary["injections"] + summary["missing"] != count:
            err(f"summary.injections + summary.missing "
                f"({summary['injections']} + {summary['missing']}) "
                f"!= config.count ({count})")
        tally = sum(summary[o] for o in OUTCOMES)
        if tally != summary["injections"]:
            err(f"summary outcome counts sum to {tally}, not "
                f"summary.injections ({summary['injections']})")

    incomplete = root.get("incomplete")
    failed = chunks.get("failed")
    missing = summary.get("missing")
    if is_count(failed) and is_count(missing):
        if (failed > 0 or missing > 0) and not isinstance(incomplete,
                                                          dict):
            err("campaign has failed chunks or missing injections but "
                "no 'incomplete' block")
        if failed == 0 and missing == 0 and incomplete is not None:
            err("'incomplete' block present on a complete campaign")
    if isinstance(incomplete, dict):
        fc = incomplete.get("failed_chunks")
        mi = incomplete.get("missing_injections")
        if not isinstance(fc, list) or not isinstance(mi, list):
            err("incomplete.failed_chunks and .missing_injections must "
                "be arrays")
        else:
            if is_count(failed) and len(fc) != failed:
                err(f"incomplete.failed_chunks has {len(fc)} entries, "
                    f"chunks.failed says {failed}")
            if is_count(missing) and len(mi) != missing:
                err(f"incomplete.missing_injections has {len(mi)} "
                    f"entries, summary.missing says {missing}")

    report = root.get("report")
    if not isinstance(report, dict):
        err("'report' must be an object (the merged fault report)")
        report = {}
    for field in ("design", "engine"):
        if field in report and report.get(field) != root.get(field):
            err(f"report.{field} ({report.get(field)!r}) disagrees "
                f"with top-level {field} ({root.get(field)!r})")
    if isinstance(report.get("config"), dict) and config and \
            report["config"] != config:
        err("report.config disagrees with top-level config")
    injections = report.get("injections")
    if not isinstance(injections, list):
        err("report.injections must be an array")
        injections = []
    if have_summary and len(injections) != summary["injections"]:
        err(f"report.injections has {len(injections)} records, "
            f"summary.injections says {summary['injections']}")
    # Re-tally per-record outcomes: a summary count that was edited (or
    # a merge that dropped/duplicated records) cannot re-balance.
    tallied = dict.fromkeys(OUTCOMES, 0)
    last_index = -1
    for i, rec in enumerate(injections):
        rwhere = f"report.injections[{i}]"
        if not isinstance(rec, dict):
            err(f"{rwhere} must be an object")
            continue
        idx = rec.get("index")
        if not is_count(idx):
            err(f"{rwhere}.index must be a non-negative integer")
        else:
            if idx <= last_index:
                err(f"{rwhere}.index ({idx}) not strictly increasing "
                    f"(previous {last_index}) — merge order broken")
            last_index = idx
        outcome = rec.get("outcome")
        if outcome not in OUTCOMES:
            err(f"{rwhere}.outcome must be one of {OUTCOMES}, "
                f"got {outcome!r}")
        else:
            tallied[outcome] += 1
    if have_summary:
        for o in OUTCOMES:
            if tallied[o] != summary[o]:
                err(f"summary.{o} ({summary[o]}) disagrees with the "
                    f"record tally ({tallied[o]})")

    metrics = root.get("metrics")
    if not isinstance(metrics, dict) or \
            not isinstance(metrics.get("counters"), dict):
        err("'metrics' must be a registry dump with a counters object")
        counters = {}
    else:
        counters = metrics["counters"]
    design = root.get("design")
    if isinstance(design, str) and design and have_summary:
        for o in OUTCOMES:
            key = f"fault/{design}/outcome/{o}"
            if counters.get(key, 0) != summary[o]:
                err(f"metrics counter {key} ({counters.get(key, 0)}) "
                    f"disagrees with summary.{o} ({summary[o]})")
        key = f"fault/{design}/injections"
        if counters.get(key, 0) != summary["injections"]:
            err(f"metrics counter {key} ({counters.get(key, 0)}) "
                f"disagrees with summary.injections "
                f"({summary['injections']})")
    if is_count(chunks.get("completed")) and \
            counters.get("orch/chunks_completed", 0) != \
            chunks["completed"]:
        err(f"metrics counter orch/chunks_completed "
            f"({counters.get('orch/chunks_completed', 0)}) disagrees "
            f"with chunks.completed ({chunks['completed']})")
    return len(problems) == before


def load(problems, path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        problems.append(f"{path}: unreadable or invalid JSON: {e}")
        return None


def build_test_report():
    recs = [
        {"index": 0, "cycle": 10, "reg": 0, "reg_name": "x", "bit": 1,
         "kind": "bit_flip", "outcome": "masked", "diverged": False,
         "detected": False, "final_state_matches": True},
        {"index": 1, "cycle": 20, "reg": 1, "reg_name": "y", "bit": 2,
         "kind": "bit_flip", "outcome": "sdc", "diverged": True,
         "detected": False, "final_state_matches": False},
        {"index": 2, "cycle": 30, "reg": 0, "reg_name": "x", "bit": 0,
         "kind": "stuck_at_1", "outcome": "detected", "diverged": True,
         "detected": True, "final_state_matches": False},
    ]
    config = {"seed": 7, "count": 3, "cycles": 100, "stuck_at": True,
              "max_stuck_cycles": 8}
    return {
        "schema": SCHEMA,
        "design": "collatz",
        "engine": "T5-static-analysis",
        "config": config,
        "orchestration": {"workers": 2, "chunk_size": 2,
                          "worker_timeout_seconds": 10,
                          "max_retries": 3, "chaos": 0},
        "chunks": {"total": 2, "completed": 2, "failed": 0},
        "summary": {"injections": 3, "masked": 1, "sdc": 1,
                    "detected": 1, "missing": 0},
        "report": {
            "design": "collatz",
            "engine": "T5-static-analysis",
            "config": dict(config),
            "summary": {"injections": 3, "masked": 1, "sdc": 1,
                        "detected": 1},
            "injections": recs,
        },
        "metrics": {
            "counters": {
                "fault/collatz/injections": 3,
                "fault/collatz/outcome/masked": 1,
                "fault/collatz/outcome/sdc": 1,
                "fault/collatz/outcome/detected": 1,
                "orch/chunks_claimed": 2,
                "orch/chunks_completed": 2,
                "orch/workers_spawned": 2,
            },
            "gauges": {},
            "histograms": {},
        },
        "wall_seconds": 1.25,
    }


def self_test():
    ok = build_test_report()
    problems = []
    validate(problems, "valid", ok)
    if problems:
        print("self-test: pristine report failed validation:")
        for p in problems:
            print(f"  {p}")
        return 1

    # An honestly-incomplete report (failed chunk, missing work
    # accounted for everywhere) must also validate.
    import copy
    inc = copy.deepcopy(ok)
    inc["chunks"] = {"total": 2, "completed": 1, "failed": 1}
    inc["summary"] = {"injections": 2, "masked": 1, "sdc": 1,
                      "detected": 0, "missing": 1}
    inc["incomplete"] = {"failed_chunks": [1],
                         "missing_injections": [2]}
    inc["report"]["injections"] = inc["report"]["injections"][:2]
    inc["report"]["summary"]["missing"] = 1
    inc["metrics"]["counters"].update({
        "fault/collatz/injections": 2,
        "fault/collatz/outcome/detected": 0,
        "orch/chunks_completed": 1,
        "orch/chunks_failed": 1,
    })
    problems = []
    validate(problems, "incomplete", inc)
    if problems:
        print("self-test: honest incomplete report failed validation:")
        for p in problems:
            print(f"  {p}")
        return 1

    def corrupted(label, mutate):
        bad = copy.deepcopy(ok)
        mutate(bad)
        p = []
        validate(p, label, bad)
        if not p:
            print(f"self-test: corruption not detected: {label}")
            return False
        return True

    def wrong_schema(r):
        r["schema"] = "cuttlesim-fault-v1"

    def chunks_dont_sum(r):
        r["chunks"]["completed"] = 1

    def chunk_count_wrong(r):
        r["chunks"] = {"total": 5, "completed": 5, "failed": 0}

    def summary_bumped(r):
        r["summary"]["masked"] += 1  # the tamper-gate case

    def record_dropped(r):
        r["report"]["injections"] = r["report"]["injections"][1:]

    def record_duplicated(r):
        r["report"]["injections"].append(
            dict(r["report"]["injections"][-1]))

    def indices_unsorted(r):
        r["report"]["injections"].reverse()

    def silent_missing(r):
        # Claims complete but a record vanished and counts re-balanced:
        # the config.count cross-check must notice.
        r["report"]["injections"] = r["report"]["injections"][1:]
        r["summary"]["injections"] = 2
        r["summary"]["masked"] = 0

    def metrics_disagree(r):
        r["metrics"]["counters"]["fault/collatz/outcome/sdc"] = 9

    def phantom_incomplete(r):
        r["incomplete"] = {"failed_chunks": [], "missing_injections": []}

    def bad_chaos(r):
        r["orchestration"]["chaos"] = 1.5

    def negative_wall(r):
        r["wall_seconds"] = -1

    cases = [
        ("wrong schema tag", wrong_schema),
        ("chunks total != completed + failed", chunks_dont_sum),
        ("chunk count disagrees with count/chunk_size",
         chunk_count_wrong),
        ("tampered summary count", summary_bumped),
        ("dropped injection record", record_dropped),
        ("duplicated injection record", record_duplicated),
        ("unsorted injection indices", indices_unsorted),
        ("silently re-balanced missing record", silent_missing),
        ("metrics disagree with summary", metrics_disagree),
        ("incomplete block on a complete campaign", phantom_incomplete),
        ("chaos outside [0, 1]", bad_chaos),
        ("negative wall_seconds", negative_wall),
    ]
    if not all(corrupted(label, m) for label, m in cases):
        return 1

    print(f"self-test: {SCHEMA} validator detects all {len(cases)} "
          f"corruption cases and accepts honest complete and "
          f"incomplete reports")
    return 0


def main(argv):
    if len(argv) == 2 and argv[1] == "--self-test":
        return self_test()
    args = [a for a in argv[1:]]
    if not args:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    problems = []
    for path in args:
        root = load(problems, path)
        if root is None:
            continue
        validate(problems, path, root)
    for p in problems:
        print(p)
    if not problems:
        print(f"{len(args)} orchestrated-campaign report(s) validate "
              f"against {SCHEMA}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
