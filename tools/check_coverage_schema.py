#!/usr/bin/env python3
"""Validate coverage databases against the cuttlesim-cov-v1 schema.

Every coverage producer (cuttlec --coverage=, fault campaigns,
scheduler_fuzz with KOIKA_FUZZ_COVERAGE=, cuttlec --coverage-merge)
writes one database per design; this checker is the executable form of
the schema documented in EXPERIMENTS.md ("The coverage database
schema"). ctest runs it over databases produced during the suite
(label: coverage), so a drifting writer fails the build instead of
silently producing unmergeable shards.

Beyond field shapes, it checks the internal consistency invariants the
merge operation relies on: sparse statement/branch ids must be inside
[0, nodes), branch entries must be [taken, not_taken] pairs, toggle
rise/fall arrays must match the declared register width, and every
count must be an exact non-negative integer (floats would break the
byte-identity contract between --jobs=1 and --jobs=N producers).

Usage: check_coverage_schema.py FILE.json [FILE.json ...]
Exits 0 when every file validates; prints one line per problem.
"""

import json
import sys


def err(problems, path, msg):
    problems.append(f"{path}: {msg}")


def check_count(problems, path, value, what):
    if isinstance(value, bool) or not isinstance(value, int):
        err(problems, path, f"{what} must be an exact integer, got "
                            f"{type(value).__name__}")
        return False
    if value < 0:
        err(problems, path, f"{what} must be non-negative, got {value}")
        return False
    return True


def check_string(problems, path, obj, key):
    if key not in obj or not isinstance(obj[key], str):
        err(problems, path, f"missing or non-string field '{key}'")
        return False
    return True


def check_sparse(problems, path, obj, key, nodes, pair):
    """A sparse {node-id: count} or {node-id: [taken, not_taken]} map."""
    block = obj.get(key)
    if not isinstance(block, dict):
        err(problems, path, f"'{key}' must be an object")
        return
    for node_id, value in block.items():
        where = f"{path} {key}[{node_id}]"
        if not node_id.isdigit() or int(node_id) >= nodes:
            err(problems, where,
                f"key must be a node id in [0, {nodes})")
        if pair:
            if not isinstance(value, list) or len(value) != 2:
                err(problems, where, "value must be [taken, not_taken]")
                continue
            for v in value:
                check_count(problems, where, v, "branch outcome count")
        else:
            check_count(problems, where, value, "statement count")


def check_file(problems, path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            root = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        err(problems, path, f"unreadable or invalid JSON: {e}")
        return
    if not isinstance(root, dict):
        err(problems, path, "root must be an object")
        return
    if root.get("schema") != "cuttlesim-cov-v1":
        err(problems, path,
            f"schema tag must be 'cuttlesim-cov-v1', got "
            f"{root.get('schema')!r}")
        return
    check_string(problems, path, root, "design")
    nodes = root.get("nodes")
    if not check_count(problems, path, nodes, "'nodes'"):
        return
    check_count(problems, path, root.get("cycles"), "'cycles'")

    engines = root.get("engines")
    if not isinstance(engines, list) or \
            not all(isinstance(e, str) for e in engines):
        err(problems, path, "'engines' must be an array of strings")
    elif engines != sorted(set(engines)):
        err(problems, path, "'engines' must be sorted and unique "
                            "(the merge invariant)")

    points = root.get("points")
    if not isinstance(points, dict):
        err(problems, path, "'points' must be an object")
    else:
        for key in ("statements", "branches", "toggle_bits"):
            check_count(problems, f"{path} points", points.get(key),
                        f"'{key}'")

    check_sparse(problems, path, root, "statements", nodes, pair=False)
    check_sparse(problems, path, root, "branches", nodes, pair=True)

    rules = root.get("rules")
    if not isinstance(rules, list):
        err(problems, path, "'rules' must be an array")
    else:
        for i, rule in enumerate(rules):
            where = f"{path} rules[{i}]"
            if not isinstance(rule, dict):
                err(problems, where, "rule must be an object")
                continue
            check_string(problems, where, rule, "name")
            check_count(problems, where, rule.get("commits"), "'commits'")
            check_count(problems, where, rule.get("aborts"), "'aborts'")

    toggles = root.get("toggles")
    if not isinstance(toggles, list):
        err(problems, path, "'toggles' must be an array")
        return
    total_bits = 0
    for i, reg in enumerate(toggles):
        where = f"{path} toggles[{i}]"
        if not isinstance(reg, dict):
            err(problems, where, "toggle entry must be an object")
            continue
        check_string(problems, where, reg, "name")
        width = reg.get("width")
        if not check_count(problems, where, width, "'width'"):
            continue
        total_bits += width
        for key in ("rise", "fall"):
            arr = reg.get(key)
            if not isinstance(arr, list) or len(arr) != width:
                err(problems, where,
                    f"'{key}' must be an array of {width} counts")
                continue
            for v in arr:
                check_count(problems, where, v, f"'{key}' count")
    if isinstance(points, dict) and \
            isinstance(points.get("toggle_bits"), int) and \
            points["toggle_bits"] != total_bits:
        err(problems, path,
            f"points.toggle_bits is {points['toggle_bits']} but the "
            f"toggle arrays cover {total_bits} bits")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    problems = []
    for path in argv[1:]:
        check_file(problems, path)
    for p in problems:
        print(p)
    if not problems:
        print(f"{len(argv) - 1} coverage database(s) validate against "
              f"cuttlesim-cov-v1")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
