#!/usr/bin/env python3
"""Diff a cuttlesim-bench-v1 report against its checked-in baseline.

The bench binaries (bench/) write BENCH_<name>.json; the repo pins a
trajectory snapshot under bench/baselines/. This tool compares the two:

  - structural drift is always checked: schema tag, bench name, the
    label set (an entry that disappears or appears is drift), and the
    engine used per label;
  - timing is checked only when NEITHER side is a smoke run
    (host.smoke): current cycles_per_sec must not fall below
    baseline * (1 - tolerance). Speedups never fail.
  - parallel-scaling drift is reported but NEVER fatal: entries that
    carry extra.speedup_vs_serial (bench_parallel) are compared, and a
    current speedup below baseline * (1 - tolerance) prints a
    "SPEEDUP:" line. It does not affect the exit code — scaling is
    host-dependent (core count, load), so it is a trajectory report,
    not a gate; smoke-run speedups are compared too, flagged as
    indicative only.

Usage: bench_diff.py BASELINE CURRENT [--tolerance=F] [--update]
                     [--report-only]
       bench_diff.py --self-test

  --tolerance=F   allowed fractional slowdown (default 0.25)
  --update        copy CURRENT over BASELINE and exit 0
  --report-only   print the full comparison but always exit 0 (how
                  ctest wires it in: a trajectory report, not a gate)

Exit codes: 0 ok / within tolerance, 1 drift or regression, 2 usage.
"""

import json
import shutil
import sys

SCHEMA = "cuttlesim-bench-v1"


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def entries_by_label(report):
    out = {}
    for e in report.get("entries", []):
        if isinstance(e, dict) and isinstance(e.get("label"), str):
            out[e["label"]] = e
    return out


def compare(problems, notes, baseline, current, tolerance,
            speedups=None):
    if speedups is None:
        speedups = []
    for name, rep in (("baseline", baseline), ("current", current)):
        if not isinstance(rep, dict) or rep.get("schema") != SCHEMA:
            problems.append(f"{name}: schema tag must be '{SCHEMA}', "
                            f"got {rep.get('schema')!r}")
            return
    if baseline.get("bench") != current.get("bench"):
        problems.append(f"bench name drift: baseline "
                        f"{baseline.get('bench')!r} vs current "
                        f"{current.get('bench')!r}")
    base = entries_by_label(baseline)
    cur = entries_by_label(current)
    for label in sorted(set(base) - set(cur)):
        problems.append(f"label drift: {label!r} in baseline but "
                        f"missing from current")
    for label in sorted(set(cur) - set(base)):
        problems.append(f"label drift: {label!r} in current but not in "
                        f"baseline (rerun with --update to adopt)")
    smoke = bool(baseline.get("host", {}).get("smoke")) or \
        bool(current.get("host", {}).get("smoke"))
    if smoke:
        notes.append("smoke run on at least one side: timing not "
                     "compared")
    for label in sorted(set(base) & set(cur)):
        b, c = base[label], cur[label]
        if b.get("engine") != c.get("engine"):
            problems.append(f"{label}: engine drift: baseline "
                            f"{b.get('engine')!r} vs current "
                            f"{c.get('engine')!r}")
        bsp = b.get("extra", {}).get("speedup_vs_serial")
        csp = c.get("extra", {}).get("speedup_vs_serial")
        if isinstance(bsp, (int, float)) and \
                isinstance(csp, (int, float)) and bsp > 0:
            if csp < bsp * (1.0 - tolerance):
                speedups.append(
                    f"{label}: speedup_vs_serial {csp:.2f}x vs "
                    f"baseline {bsp:.2f}x"
                    + (" (smoke run, indicative only)" if smoke else ""))
            else:
                notes.append(f"{label}: speedup_vs_serial {csp:.2f}x "
                             f"(baseline {bsp:.2f}x)")
        bs, cs = b.get("cycles_per_sec"), c.get("cycles_per_sec")
        if not isinstance(bs, (int, float)) or \
                not isinstance(cs, (int, float)) or bs <= 0:
            notes.append(f"{label}: no comparable cycles_per_sec")
            continue
        ratio = cs / bs
        line = (f"{label}: {cs:.3g} vs baseline {bs:.3g} cycles/s "
                f"({ratio:+.1%} of baseline)")
        if not smoke and ratio < 1.0 - tolerance:
            problems.append(f"regression: {line}, below the "
                            f"{tolerance:.0%} tolerance band")
        else:
            notes.append(line)


def self_test():
    def report(smoke=True, rate=1000.0, engine="T5", labels=("a", "b"),
               speedup=None):
        extra = {} if speedup is None \
            else {"speedup_vs_serial": speedup}
        return {"schema": SCHEMA, "bench": "t", "host": {"smoke": smoke},
                "entries": [{"label": x, "engine": engine,
                             "cycles_per_sec": rate,
                             "extra": extra} for x in labels]}

    problems, notes = [], []
    compare(problems, notes, report(), report(), 0.25)
    if problems:
        print("self-test: identical reports should not drift:")
        for p in problems:
            print(f"  {p}")
        return 1

    failures = []

    def expect_bad(label, baseline, current):
        p, n = [], []
        compare(p, n, baseline, current, 0.25)
        if not p:
            failures.append(label)

    expect_bad("label drift", report(), report(labels=("a",)))
    expect_bad("engine drift", report(), report(engine="T4"))
    expect_bad("slowdown past tolerance", report(smoke=False),
               report(smoke=False, rate=100.0))
    expect_bad("schema drift", {"schema": "cuttlesim-prof-v1"}, report())

    # Timing must NOT gate smoke runs, and speedups never fail.
    for label, baseline, current in (
            ("smoke suppresses timing", report(smoke=True),
             report(smoke=True, rate=1.0)),
            ("speedup passes", report(smoke=False),
             report(smoke=False, rate=9999.0))):
        p, n = [], []
        compare(p, n, baseline, current, 0.25)
        if p:
            failures.append(label)

    # Speedup regressions are flagged in their own list and never
    # become problems — scaling drift reports, it does not gate.
    p, n, s = [], [], []
    compare(p, n, baseline=report(smoke=False, speedup=4.0),
            current=report(smoke=False, speedup=1.1), tolerance=0.25,
            speedups=s)
    if p:
        failures.append("speedup regression must stay non-fatal")
    if not s:
        failures.append("speedup regression not flagged")
    p, n, s = [], [], []
    compare(p, n, baseline=report(smoke=False, speedup=4.0),
            current=report(smoke=False, speedup=3.9), tolerance=0.25,
            speedups=s)
    if p or s:
        failures.append("in-band speedup wrongly flagged")

    if failures:
        for label in failures:
            print(f"self-test: wrong verdict: {label}")
        return 1
    print("self-test: bench_diff detects drift/regression, ignores "
          "smoke timing, and reports (never gates) speedup drift")
    return 0


def main(argv):
    if len(argv) == 2 and argv[1] == "--self-test":
        return self_test()
    tolerance = 0.25
    update = report_only = False
    paths = []
    for a in argv[1:]:
        if a.startswith("--tolerance="):
            try:
                tolerance = float(a.split("=", 1)[1])
            except ValueError:
                print(f"bench_diff: bad tolerance {a!r}", file=sys.stderr)
                return 2
        elif a == "--update":
            update = True
        elif a == "--report-only":
            report_only = True
        elif a.startswith("--"):
            print(f"bench_diff: unknown flag {a!r}", file=sys.stderr)
            return 2
        else:
            paths.append(a)
    if len(paths) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    baseline_path, current_path = paths
    if update:
        shutil.copyfile(current_path, baseline_path)
        print(f"bench_diff: baseline {baseline_path} updated from "
              f"{current_path}")
        return 0
    try:
        baseline = load(baseline_path)
        current = load(current_path)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_diff: cannot load reports: {e}", file=sys.stderr)
        return 2
    problems, notes, speedups = [], [], []
    compare(problems, notes, baseline, current, tolerance, speedups)
    for n in notes:
        print(f"  {n}")
    # Scaling regressions are reported, never gated (host-dependent).
    for s in speedups:
        print(f"SPEEDUP: {s}")
    for p in problems:
        print(f"DRIFT: {p}")
    if not problems:
        print(f"bench_diff: {current_path} matches the "
              f"{baseline_path} trajectory")
    return 0 if report_only or not problems else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
