#!/usr/bin/env python3
"""Check that every relative markdown link in the repo resolves.

Walks the repository's *.md files (skipping build trees and dot
directories), extracts inline links, and verifies:

  - relative file links point at an existing file or directory;
  - fragment links (#section, both bare and FILE.md#section) resolve to
    a heading in the target file, using GitHub's anchor slug rules;
  - bare directory links are allowed (they render as listings).

External links (http://, https://, mailto:) are not fetched — this is a
hermetic checker meant for ctest (test: docs_links).

Usage: check_doc_links.py REPO_ROOT
"""

import os
import re
import sys

SKIP_DIRS = {"build", ".git", ".cache", "node_modules"}
LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def github_slug(heading):
    """GitHub's markdown heading -> anchor id transformation."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)      # drop code spans
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # keep link text
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def md_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames
                       if d not in SKIP_DIRS and not d.startswith(".")]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def anchors_of(path, cache):
    if path not in cache:
        slugs = {}
        anchors = set()
        in_fence = False
        try:
            with open(path, "r", encoding="utf-8") as f:
                for line in f:
                    if CODE_FENCE_RE.match(line):
                        in_fence = not in_fence
                        continue
                    if in_fence:
                        continue
                    m = HEADING_RE.match(line)
                    if not m:
                        continue
                    slug = github_slug(m.group(1))
                    n = slugs.get(slug, 0)
                    slugs[slug] = n + 1
                    anchors.add(slug if n == 0 else f"{slug}-{n}")
        except OSError:
            pass
        cache[path] = anchors
    return cache[path]


def links_of(path):
    in_fence = False
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for m in LINK_RE.finditer(line):
                yield lineno, m.group(1)


def main(argv):
    if len(argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    root = os.path.abspath(argv[1])
    problems = []
    anchor_cache = {}
    checked = 0
    for md in sorted(md_files(root)):
        rel_md = os.path.relpath(md, root)
        for lineno, target in links_of(md):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            checked += 1
            where = f"{rel_md}:{lineno}"
            path_part, _, fragment = target.partition("#")
            if path_part:
                dest = os.path.normpath(
                    os.path.join(os.path.dirname(md), path_part))
            else:
                dest = md  # same-file fragment
            if not os.path.exists(dest):
                problems.append(f"{where}: broken link '{target}' "
                                f"(no such file)")
                continue
            if fragment:
                if os.path.isdir(dest) or not dest.endswith(".md"):
                    continue  # anchors only checked inside markdown
                if fragment not in anchors_of(dest, anchor_cache):
                    problems.append(f"{where}: broken anchor "
                                    f"'{target}' (no heading "
                                    f"'#{fragment}' in "
                                    f"{os.path.relpath(dest, root)})")
    for p in problems:
        print(p)
    if not problems:
        print(f"{checked} relative link(s) across the repo's markdown "
              f"resolve")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
