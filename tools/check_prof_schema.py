#!/usr/bin/env python3
"""Validate cuttlesim-prof-v1 host-profile reports.

The span profiler (src/obs/prof.hpp, documented field by field in
docs/OBSERVABILITY.md) summarises where a run's host wall-clock went:

    schema          "cuttlesim-prof-v1"
    wall_seconds    wall time since the profiler was enabled
    phases          object keyed by '/'-separated phase path, each
                    {count, total_seconds, mean_seconds, max_seconds}
    workers         array sorted by thread name, each {name, spans,
                    busy_seconds, wait_seconds, idle_seconds,
                    utilization}
    pool            {workers, busy_seconds, idle_seconds, utilization}

This checker is the executable form of that schema: ctest runs it over
reports the CLI writes (label: prof), so a drifting writer fails the
suite instead of silently producing unreadable profiles.

Usage: check_prof_schema.py FILE.json [FILE.json ...]
       check_prof_schema.py --min-phase-fraction=F FILE.json
           additionally require sum(phase total_seconds) >= F *
           wall_seconds — the "the profile accounts for the run"
           coverage gate (phases nest, so the sum may exceed wall).
       check_prof_schema.py --compare-phases A.json B.json
           require the two reports be structurally identical modulo
           timings: same phase key set, same per-worker and pool field
           sets. This is the any-`--jobs` structure contract.
       check_prof_schema.py --self-test
Exits 0 when every file validates; prints one line per problem.
"""

import json
import sys

SCHEMA = "cuttlesim-prof-v1"

PHASE_FIELDS = ("count", "total_seconds", "mean_seconds", "max_seconds")
WORKER_NUM_FIELDS = ("spans", "busy_seconds", "wait_seconds",
                     "idle_seconds", "utilization")
POOL_FIELDS = ("workers", "busy_seconds", "idle_seconds", "utilization")


def is_number(v):
    return not isinstance(v, bool) and isinstance(v, (int, float))


def validate(problems, where, root):
    """Validate one parsed cuttlesim-prof-v1 report."""
    before = len(problems)

    def err(msg):
        problems.append(f"{where}: {msg}")

    if not isinstance(root, dict):
        err("root must be an object")
        return False
    if root.get("schema") != SCHEMA:
        err(f"schema tag must be '{SCHEMA}', got {root.get('schema')!r}")
    if not is_number(root.get("wall_seconds")) or \
            root.get("wall_seconds", -1) < 0:
        err("'wall_seconds' must be a non-negative number")

    phases = root.get("phases")
    if not isinstance(phases, dict):
        err("'phases' must be an object keyed by phase path")
        phases = {}
    for name, ph in phases.items():
        pwhere = f"phases[{name!r}]"
        if not isinstance(ph, dict):
            err(f"{pwhere} must be an object")
            continue
        for field in PHASE_FIELDS:
            if not is_number(ph.get(field)) or ph.get(field, -1) < 0:
                err(f"{pwhere}.{field} must be a non-negative number")
        if is_number(ph.get("count")) and ph["count"] == 0:
            err(f"{pwhere} has count 0 — empty phases must be omitted")
        if all(is_number(ph.get(f)) for f in
               ("count", "total_seconds", "mean_seconds")) and ph["count"]:
            expect = ph["total_seconds"] / ph["count"]
            if abs(ph["mean_seconds"] - expect) > 1e-6 + 1e-3 * expect:
                err(f"{pwhere}.mean_seconds inconsistent with "
                    f"total_seconds/count")

    workers = root.get("workers")
    if not isinstance(workers, list):
        err("'workers' must be an array")
        workers = []
    names = []
    for i, w in enumerate(workers):
        wwhere = f"workers[{i}]"
        if not isinstance(w, dict):
            err(f"{wwhere} must be an object")
            continue
        if not isinstance(w.get("name"), str) or not w.get("name"):
            err(f"{wwhere}.name must be a non-empty string")
        else:
            names.append(w["name"])
        for field in WORKER_NUM_FIELDS:
            if not is_number(w.get(field)) or w.get(field, -1) < 0:
                err(f"{wwhere}.{field} must be a non-negative number")
        if is_number(w.get("utilization")) and w["utilization"] > 1.0 + 1e-9:
            err(f"{wwhere}.utilization must be <= 1")
    if names != sorted(names):
        err("workers must be sorted by name")
    if len(set(names)) != len(names):
        err("duplicate worker name — same-named threads must be merged")

    pool = root.get("pool")
    if not isinstance(pool, dict):
        err("'pool' must be an object")
        pool = {}
    for field in POOL_FIELDS:
        if not is_number(pool.get(field)) or pool.get(field, -1) < 0:
            err(f"pool.{field} must be a non-negative number")
    if is_number(pool.get("workers")) and workers and \
            pool["workers"] != len(workers):
        err(f"pool.workers ({pool['workers']}) disagrees with the "
            f"workers array ({len(workers)})")
    return len(problems) == before


def load(problems, path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        problems.append(f"{path}: unreadable or invalid JSON: {e}")
        return None


def check_min_fraction(problems, path, root, fraction):
    """sum(phase total_seconds) must cover `fraction` of wall time."""
    phases = root.get("phases", {})
    wall = root.get("wall_seconds", 0)
    if not isinstance(phases, dict) or not is_number(wall):
        return  # validate() already reported the structural problem
    total = sum(ph.get("total_seconds", 0) for ph in phases.values()
                if isinstance(ph, dict) and
                is_number(ph.get("total_seconds")))
    if wall > 0 and total < fraction * wall:
        problems.append(
            f"{path}: phases account for {total:.3f}s of {wall:.3f}s "
            f"wall ({100 * total / wall:.1f}%), below the required "
            f"{100 * fraction:.0f}%")


def structure(root):
    """The timing-independent shape of a report."""
    return {
        "schema": root.get("schema"),
        "phases": sorted(root.get("phases", {})
                         if isinstance(root.get("phases"), dict) else []),
        "phase_fields": sorted({f for ph in root.get("phases", {}).values()
                                if isinstance(ph, dict) for f in ph}
                               if isinstance(root.get("phases"), dict)
                               else []),
        "worker_fields": sorted({f for w in root.get("workers", [])
                                 if isinstance(w, dict) for f in w}
                                if isinstance(root.get("workers"), list)
                                else []),
        "pool_fields": sorted(root.get("pool", {})
                              if isinstance(root.get("pool"), dict)
                              else []),
    }


def compare_phases(problems, path_a, path_b):
    a = load(problems, path_a)
    b = load(problems, path_b)
    if a is None or b is None:
        return
    validate(problems, path_a, a)
    validate(problems, path_b, b)
    sa, sb = structure(a), structure(b)
    for key in sa:
        if sa[key] != sb[key]:
            problems.append(
                f"{path_a} vs {path_b}: {key} differ: "
                f"{sorted(set(map(str, sa[key])) ^ set(map(str, sb[key])))}")


def build_test_report():
    return {
        "schema": SCHEMA,
        "wall_seconds": 2.0,
        "phases": {
            "pool/item": {"count": 4, "total_seconds": 1.6,
                          "mean_seconds": 0.4, "max_seconds": 0.5},
            "trial/run": {"count": 4, "total_seconds": 1.2,
                          "mean_seconds": 0.3, "max_seconds": 0.4},
            "trial/setup": {"count": 4, "total_seconds": 0.4,
                            "mean_seconds": 0.1, "max_seconds": 0.2},
        },
        "workers": [
            {"name": "main", "spans": 2, "busy_seconds": 0.2,
             "wait_seconds": 0.0, "idle_seconds": 1.8,
             "utilization": 0.1},
            {"name": "worker-000", "spans": 12, "busy_seconds": 1.6,
             "wait_seconds": 0.1, "idle_seconds": 0.4,
             "utilization": 0.8},
        ],
        "pool": {"workers": 2, "busy_seconds": 1.8, "idle_seconds": 2.2,
                 "utilization": 0.45},
    }


def self_test():
    ok = build_test_report()
    problems = []
    validate(problems, "valid", ok)
    check_min_fraction(problems, "valid", ok, 0.9)
    if problems:
        print("self-test: pristine report failed validation:")
        for p in problems:
            print(f"  {p}")
        return 1

    import copy

    def corrupted(label, mutate):
        bad = copy.deepcopy(ok)
        mutate(bad)
        p = []
        validate(p, label, bad)
        if not p:
            print(f"self-test: corruption not detected: {label}")
            return False
        return True

    def strip_schema(r):
        r["schema"] = "cuttlesim-cov-v1"

    def negative_wall(r):
        r["wall_seconds"] = -1

    def bad_phase(r):
        r["phases"]["trial/run"]["total_seconds"] = "fast"

    def bad_mean(r):
        r["phases"]["trial/run"]["mean_seconds"] = 99.0

    def unsorted_workers(r):
        r["workers"].reverse()

    def duplicate_worker(r):
        r["workers"].append(dict(r["workers"][0]))
        r["workers"].sort(key=lambda w: w["name"])
        r["pool"]["workers"] = 3

    def pool_disagrees(r):
        r["pool"]["workers"] = 7

    def over_utilized(r):
        r["workers"][0]["utilization"] = 1.5

    cases = [
        ("wrong schema tag", strip_schema),
        ("negative wall_seconds", negative_wall),
        ("non-numeric phase total", bad_phase),
        ("inconsistent mean_seconds", bad_mean),
        ("unsorted workers", unsorted_workers),
        ("unmerged duplicate worker", duplicate_worker),
        ("pool/workers disagrees with array", pool_disagrees),
        ("utilization above 1", over_utilized),
    ]
    if not all(corrupted(label, m) for label, m in cases):
        return 1

    starved = copy.deepcopy(ok)
    for ph in starved["phases"].values():
        ph["total_seconds"] *= 0.01
        ph["mean_seconds"] *= 0.01
        ph["max_seconds"] *= 0.01
    p = []
    check_min_fraction(p, "starved", starved, 0.9)
    if not p:
        print("self-test: --min-phase-fraction did not flag a report "
              "covering 1% of wall time")
        return 1

    other = copy.deepcopy(ok)
    del other["phases"]["trial/setup"]
    p = []
    sa, sb = structure(ok), structure(other)
    if sa["phases"] == sb["phases"]:
        print("self-test: --compare-phases structure diff is blind")
        return 1

    print(f"self-test: {SCHEMA} validator detects all {len(cases)} "
          f"corruption cases plus the coverage and structure gates")
    return 0


def main(argv):
    if len(argv) == 2 and argv[1] == "--self-test":
        return self_test()

    fraction = None
    args = []
    compare = False
    for a in argv[1:]:
        if a.startswith("--min-phase-fraction="):
            fraction = float(a.split("=", 1)[1])
        elif a == "--compare-phases":
            compare = True
        else:
            args.append(a)

    if compare:
        if len(args) != 2:
            print("--compare-phases needs exactly two files",
                  file=sys.stderr)
            return 2
        problems = []
        compare_phases(problems, args[0], args[1])
        for p in problems:
            print(p)
        if not problems:
            print(f"{args[0]} and {args[1]} are structurally identical "
                  f"{SCHEMA} reports")
        return 1 if problems else 0

    if not args:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    problems = []
    for path in args:
        root = load(problems, path)
        if root is None:
            continue
        validate(problems, path, root)
        if fraction is not None:
            check_min_fraction(problems, path, root, fraction)
    for p in problems:
        print(p)
    if not problems:
        print(f"{len(args)} profile report(s) validate against {SCHEMA}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
