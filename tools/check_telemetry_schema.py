#!/usr/bin/env python3
"""Validate the fleet-telemetry artifacts of an orchestrated campaign.

src/obs/telemetry.hpp (documented field by field in
docs/OBSERVABILITY.md) defines four schemas; this checker dispatches on
the file: a `.jsonl` path is validated as a per-process
cuttlesim-telemetry-v1 stream, anything else is parsed and dispatched
on its `schema` tag:

    cuttlesim-telemetry-v1   telemetry/<proc>.jsonl — one JSON record
                             per line: a `meta` record per process
                             incarnation (proc, pid, epoch, compiler),
                             then `event` and `snapshot` records with
                             per-incarnation increasing `seq`.
                             Snapshot spans are 5-element arrays
                             [phase, start_ns, dur_ns, depth, idle].
                             A torn FINAL line is legal (crashed
                             writer); torn interior lines are not.
    cuttlesim-events-v1      events.json — the merged journal, events
                             sorted by (ts_ns, proc, seq)
    cuttlesim-status-v1      status.json — the supervisor's live
                             drain status
    cuttlesim-metrics-v1     cuttlec --metrics=FILE dump

(The merged fleet.prof.json is cuttlesim-prof-v1 — validate it with
tools/check_prof_schema.py.)

Usage: check_telemetry_schema.py FILE [FILE ...]
       check_telemetry_schema.py --self-test
Exits 0 when every file validates; prints one line per problem.
"""

import json
import sys

TELEMETRY_SCHEMA = "cuttlesim-telemetry-v1"
EVENTS_SCHEMA = "cuttlesim-events-v1"
STATUS_SCHEMA = "cuttlesim-status-v1"
METRICS_SCHEMA = "cuttlesim-metrics-v1"

STATES = ("running", "complete", "degraded", "interrupted")


def is_number(v):
    return not isinstance(v, bool) and isinstance(v, (int, float))


def is_uint(v):
    return not isinstance(v, bool) and isinstance(v, int) and v >= 0


def check_metrics_block(err, where, m):
    if not isinstance(m, dict):
        err(f"{where} must be an object")
        return
    counters = m.get("counters")
    if not isinstance(counters, dict):
        err(f"{where}.counters must be an object")
    else:
        for name, v in counters.items():
            if not is_uint(v):
                err(f"{where}.counters[{name!r}] must be a non-negative "
                    f"integer")
    gauges = m.get("gauges")
    if not isinstance(gauges, dict):
        err(f"{where}.gauges must be an object")
    else:
        for name, v in gauges.items():
            if not is_number(v):
                err(f"{where}.gauges[{name!r}] must be a number")
    if not isinstance(m.get("histograms"), dict):
        err(f"{where}.histograms must be an object")


def check_event_fields(err, where, e, want_proc):
    if not isinstance(e, dict):
        err(f"{where} must be an object")
        return
    if not is_uint(e.get("ts_ns")):
        err(f"{where}.ts_ns must be a non-negative integer")
    if not is_uint(e.get("seq")):
        err(f"{where}.seq must be a non-negative integer")
    if not isinstance(e.get("name"), str) or not e.get("name"):
        err(f"{where}.name must be a non-empty string")
    if not isinstance(e.get("args"), dict):
        err(f"{where}.args must be an object")
    if want_proc and (not isinstance(e.get("proc"), str) or
                      not e.get("proc")):
        err(f"{where}.proc must be a non-empty string")


def check_span(err, where, s):
    if not isinstance(s, list) or len(s) != 5:
        err(f"{where} must be a 5-element array "
            f"[phase, start_ns, dur_ns, depth, idle]")
        return
    phase, start, dur, depth, idle = s
    if not isinstance(phase, str) or not phase:
        err(f"{where}[0] (phase) must be a non-empty string")
    for i, v in ((1, start), (2, dur), (3, depth)):
        if not is_uint(v):
            err(f"{where}[{i}] must be a non-negative integer")
    if idle not in (0, 1):
        err(f"{where}[4] (idle) must be 0 or 1")


def validate_telemetry_stream(problems, where, text):
    """One telemetry/<proc>.jsonl stream (raw bytes, line-oriented)."""
    before = len(problems)

    def err(msg):
        problems.append(f"{where}: {msg}")

    lines = text.split("\n")
    torn_tail = lines and lines[-1] != ""
    if not torn_tail:
        lines = lines[:-1]
    have_meta = False
    last_seq = None
    saw_record = False
    for i, line in enumerate(lines):
        lwhere = f"line {i + 1}"
        if line == "":
            err(f"{lwhere}: empty line")
            continue
        final = torn_tail and i == len(lines) - 1
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:
            if final:
                continue  # torn tail from a crashed writer: legal
            err(f"{lwhere}: invalid JSON in the interior of the stream")
            continue
        if final:
            err(f"{lwhere}: final record has no trailing newline")
        if not isinstance(rec, dict):
            err(f"{lwhere}: record must be an object")
            continue
        kind = rec.get("kind")
        if kind == "meta":
            # One per process incarnation; resets the seq counter.
            have_meta = True
            last_seq = None
            if rec.get("schema") != TELEMETRY_SCHEMA:
                err(f"{lwhere}: meta schema must be "
                    f"'{TELEMETRY_SCHEMA}', got {rec.get('schema')!r}")
            if not isinstance(rec.get("proc"), str) or not rec.get("proc"):
                err(f"{lwhere}: meta.proc must be a non-empty string")
            if not is_uint(rec.get("pid")):
                err(f"{lwhere}: meta.pid must be a non-negative integer")
            if not is_uint(rec.get("epoch_monotonic_ns")):
                err(f"{lwhere}: meta.epoch_monotonic_ns must be a "
                    f"non-negative integer")
            if not is_uint(rec.get("start_unix")):
                err(f"{lwhere}: meta.start_unix must be a non-negative "
                    f"integer")
            if not isinstance(rec.get("compiler"), str):
                err(f"{lwhere}: meta.compiler must be a string")
            continue
        if not have_meta:
            err(f"{lwhere}: {kind!r} record before the incarnation's "
                f"meta record")
            continue
        if kind == "event":
            check_event_fields(err, lwhere, rec, want_proc=False)
        elif kind == "snapshot":
            saw_record = True
            if not is_uint(rec.get("ts_ns")):
                err(f"{lwhere}: snapshot.ts_ns must be a non-negative "
                    f"integer")
            if not is_uint(rec.get("seq")):
                err(f"{lwhere}: snapshot.seq must be a non-negative "
                    f"integer")
            for field in ("busy_seconds", "wall_seconds"):
                if not is_number(rec.get(field)) or rec.get(field) < 0:
                    err(f"{lwhere}: snapshot.{field} must be a "
                        f"non-negative number")
            threads = rec.get("threads")
            if not isinstance(threads, list):
                err(f"{lwhere}: snapshot.threads must be an array")
                threads = []
            for t, thread in enumerate(threads):
                twhere = f"{lwhere}: threads[{t}]"
                if not isinstance(thread, dict):
                    err(f"{twhere} must be an object")
                    continue
                if not isinstance(thread.get("name"), str) or \
                        not thread.get("name"):
                    err(f"{twhere}.name must be a non-empty string")
                spans = thread.get("spans")
                if not isinstance(spans, list):
                    err(f"{twhere}.spans must be an array")
                    continue
                for k, s in enumerate(spans):
                    check_span(err, f"{twhere}.spans[{k}]", s)
            check_metrics_block(err, f"{lwhere}: snapshot.metrics",
                                rec.get("metrics"))
        else:
            err(f"{lwhere}: unknown record kind {kind!r}")
            continue
        saw_record = True
        seq = rec.get("seq")
        if is_uint(seq):
            if last_seq is not None and seq <= last_seq:
                err(f"{lwhere}: seq {seq} not increasing within the "
                    f"incarnation (previous {last_seq})")
            last_seq = seq
    if not have_meta and not saw_record:
        problems.append(f"{where}: stream holds no meta record")
    return len(problems) == before


def validate_events(problems, where, root):
    """The merged events.json journal."""
    before = len(problems)

    def err(msg):
        problems.append(f"{where}: {msg}")

    if not isinstance(root, dict):
        err("root must be an object")
        return False
    if root.get("schema") != EVENTS_SCHEMA:
        err(f"schema tag must be '{EVENTS_SCHEMA}', got "
            f"{root.get('schema')!r}")
    events = root.get("events")
    if not isinstance(events, list):
        err("'events' must be an array")
        return False
    keys = []
    for i, e in enumerate(events):
        check_event_fields(err, f"events[{i}]", e, want_proc=True)
        if isinstance(e, dict) and is_uint(e.get("ts_ns")):
            keys.append((e["ts_ns"], str(e.get("proc")),
                         e.get("seq") if is_uint(e.get("seq")) else 0))
    if keys != sorted(keys):
        err("events must be sorted by (ts_ns, proc, seq)")
    return len(problems) == before


def validate_status(problems, where, root):
    """The supervisor's live status.json."""
    before = len(problems)

    def err(msg):
        problems.append(f"{where}: {msg}")

    if not isinstance(root, dict):
        err("root must be an object")
        return False
    if root.get("schema") != STATUS_SCHEMA:
        err(f"schema tag must be '{STATUS_SCHEMA}', got "
            f"{root.get('schema')!r}")
    if root.get("state") not in STATES:
        err(f"'state' must be one of {STATES}, got {root.get('state')!r}")
    for field in ("campaign", "design", "engine"):
        if not isinstance(root.get(field), str):
            err(f"'{field}' must be a string")
    for field in ("wall_seconds", "trials_per_sec", "eta_seconds"):
        if not is_number(root.get(field)) or root.get(field) < 0:
            err(f"'{field}' must be a non-negative number")
    inj = root.get("injections")
    if not isinstance(inj, dict) or not is_uint(inj.get("done")) or \
            not is_uint(inj.get("total")):
        err("'injections' must be {done, total} with non-negative "
            "integers")
    elif inj["done"] > inj["total"]:
        err(f"injections.done ({inj['done']}) exceeds injections.total "
            f"({inj['total']})")
    chunks = root.get("chunks")
    if not isinstance(chunks, dict) or not all(
            is_uint(chunks.get(f))
            for f in ("total", "completed", "failed", "in_flight")):
        err("'chunks' must be {total, completed, failed, in_flight} "
            "with non-negative integers")
    elif chunks["completed"] + chunks["failed"] > chunks["total"]:
        err(f"chunks.completed + chunks.failed "
            f"({chunks['completed']} + {chunks['failed']}) exceeds "
            f"chunks.total ({chunks['total']})")
    workers = root.get("workers")
    if not isinstance(workers, list):
        err("'workers' must be an array")
        workers = []
    for i, w in enumerate(workers):
        wwhere = f"workers[{i}]"
        if not isinstance(w, dict):
            err(f"{wwhere} must be an object")
            continue
        for field in ("slot", "pid", "restarts"):
            if not is_uint(w.get(field)):
                err(f"{wwhere}.{field} must be a non-negative integer")
        if not isinstance(w.get("up"), bool):
            err(f"{wwhere}.up must be a boolean")
        if not is_number(w.get("busy_seconds")) or w.get("busy_seconds",
                                                         -1) < 0:
            err(f"{wwhere}.busy_seconds must be a non-negative number")
        u = w.get("utilization")
        if not is_number(u) or u < 0 or u > 1.0 + 1e-9:
            err(f"{wwhere}.utilization must be a number in [0, 1]")
    inc = root.get("incomplete_chunks")
    if not isinstance(inc, list) or not all(is_uint(c) for c in inc):
        err("'incomplete_chunks' must be an array of non-negative "
            "integers")
    return len(problems) == before


def validate_metrics(problems, where, root):
    """The cuttlec --metrics=FILE artifact."""
    before = len(problems)

    def err(msg):
        problems.append(f"{where}: {msg}")

    if not isinstance(root, dict):
        err("root must be an object")
        return False
    if root.get("schema") != METRICS_SCHEMA:
        err(f"schema tag must be '{METRICS_SCHEMA}', got "
            f"{root.get('schema')!r}")
    for field in ("design", "engine"):
        if not isinstance(root.get(field), str):
            err(f"'{field}' must be a string (may be empty)")
    check_metrics_block(err, "metrics", root.get("metrics"))
    return len(problems) == before


def validate_file(problems, path):
    if path.endswith(".jsonl"):
        try:
            with open(path, "r", encoding="utf-8") as f:
                text = f.read()
        except OSError as e:
            problems.append(f"{path}: unreadable: {e}")
            return
        validate_telemetry_stream(problems, path, text)
        return
    try:
        with open(path, "r", encoding="utf-8") as f:
            root = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        problems.append(f"{path}: unreadable or invalid JSON: {e}")
        return
    schema = root.get("schema") if isinstance(root, dict) else None
    if schema == EVENTS_SCHEMA:
        validate_events(problems, path, root)
    elif schema == STATUS_SCHEMA:
        validate_status(problems, path, root)
    elif schema == METRICS_SCHEMA:
        validate_metrics(problems, path, root)
    else:
        problems.append(
            f"{path}: unknown schema {schema!r} (this tool validates "
            f"{TELEMETRY_SCHEMA} streams, {EVENTS_SCHEMA}, "
            f"{STATUS_SCHEMA}, {METRICS_SCHEMA})")


# -- Self-test ---------------------------------------------------------------

def build_stream():
    meta = {"schema": TELEMETRY_SCHEMA, "kind": "meta",
            "proc": "worker-0", "pid": 4242,
            "epoch_monotonic_ns": 1000, "start_unix": 1700000000,
            "compiler": "cc (Test) 1.0"}
    event = {"kind": "event", "seq": 0, "ts_ns": 500,
             "name": "worker/start", "args": {"worker": 0}}
    snap = {"kind": "snapshot", "seq": 1, "ts_ns": 900,
            "busy_seconds": 0.4, "wall_seconds": 0.9,
            "threads": [{"name": "worker",
                         "spans": [["orch/chunk", 100, 700, 0, 0]]}],
            "metrics": {"counters": {"worker/trials": 8}, "gauges": {},
                        "histograms": {}}}
    return "".join(json.dumps(r) + "\n" for r in (meta, event, snap))


def build_events():
    return {"schema": EVENTS_SCHEMA, "events": [
        {"ts_ns": 10, "proc": "supervisor", "seq": 0,
         "name": "worker/spawn", "args": {"slot": 0}},
        {"ts_ns": 20, "proc": "worker-0", "seq": 0,
         "name": "lease/claim", "args": {"chunk": 0}},
        {"ts_ns": 30, "proc": "supervisor", "seq": 1,
         "name": "chunk/complete", "args": {"chunk": 0}},
    ]}


def build_status():
    return {"schema": STATUS_SCHEMA, "state": "running",
            "campaign": "collatz", "design": "collatz",
            "engine": "T5", "updated_unix": 1700000000,
            "wall_seconds": 1.5, "trials_per_sec": 12.0,
            "eta_seconds": 3.0,
            "injections": {"done": 18, "total": 54},
            "chunks": {"total": 14, "completed": 4, "failed": 1,
                       "in_flight": 2},
            "workers": [{"slot": 0, "pid": 100, "up": True,
                         "restarts": 1, "busy_seconds": 1.2,
                         "utilization": 0.8}],
            "incomplete_chunks": [4, 5, 6]}


def build_metrics():
    return {"schema": METRICS_SCHEMA, "design": "collatz",
            "engine": "T5 static-analysis",
            "metrics": {"counters": {"fault/trials": 54},
                        "gauges": {"orch/wall": 1.5},
                        "histograms": {}}}


def self_test():
    import copy

    problems = []
    validate_telemetry_stream(problems, "stream", build_stream())
    validate_events(problems, "events", build_events())
    validate_status(problems, "status", build_status())
    validate_metrics(problems, "metrics", build_metrics())
    # A crashed writer's torn tail must validate clean.
    validate_telemetry_stream(problems, "torn-tail",
                              build_stream() + '{"kind": "snap')
    if problems:
        print("self-test: pristine artifacts failed validation:")
        for p in problems:
            print(f"  {p}")
        return 1

    failures = []

    def expect_bad(label, fn):
        p = []
        fn(p)
        if not p:
            failures.append(label)

    expect_bad("record before meta", lambda p: validate_telemetry_stream(
        p, "x", '{"kind": "event", "seq": 0, "ts_ns": 1, '
                '"name": "e", "args": {}}\n' + build_stream()))
    expect_bad("torn interior line", lambda p: validate_telemetry_stream(
        p, "x", build_stream().replace(
            '"kind": "event"', '"kind": "eve', 1)))
    expect_bad("wrong stream schema", lambda p: validate_telemetry_stream(
        p, "x", build_stream().replace(TELEMETRY_SCHEMA,
                                       "cuttlesim-cov-v1")))
    expect_bad("span not 5 elements", lambda p: validate_telemetry_stream(
        p, "x", build_stream().replace('["orch/chunk", 100, 700, 0, 0]',
                                       '["orch/chunk", 100, 700]')))
    expect_bad("non-increasing seq", lambda p: validate_telemetry_stream(
        p, "x", build_stream().replace('"seq": 1', '"seq": 0')))

    def unsorted_events(p):
        bad = copy.deepcopy(build_events())
        bad["events"].reverse()
        validate_events(p, "x", bad)
    expect_bad("unsorted events", unsorted_events)

    def negative_ts(p):
        bad = copy.deepcopy(build_events())
        bad["events"][0]["ts_ns"] = -5
        validate_events(p, "x", bad)
    expect_bad("negative ts_ns", negative_ts)

    def bad_state(p):
        bad = copy.deepcopy(build_status())
        bad["state"] = "exploded"
        validate_status(p, "x", bad)
    expect_bad("unknown status state", bad_state)

    def count_mismatch(p):
        bad = copy.deepcopy(build_status())
        bad["injections"]["done"] = 99
        validate_status(p, "x", bad)
    expect_bad("injections.done > total", count_mismatch)

    def chunk_overflow(p):
        bad = copy.deepcopy(build_status())
        bad["chunks"]["completed"] = 20
        validate_status(p, "x", bad)
    expect_bad("chunks completed+failed > total", chunk_overflow)

    def negative_counter(p):
        bad = copy.deepcopy(build_metrics())
        bad["metrics"]["counters"]["fault/trials"] = -1
        validate_metrics(p, "x", bad)
    expect_bad("negative counter", negative_counter)

    if failures:
        for label in failures:
            print(f"self-test: corruption not detected: {label}")
        return 1
    print("self-test: telemetry validators detect all 11 corruption "
          "cases across the four schemas")
    return 0


def main(argv):
    if len(argv) == 2 and argv[1] == "--self-test":
        return self_test()
    args = [a for a in argv[1:] if not a.startswith("--")]
    if not args or len(args) != len(argv) - 1:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    problems = []
    for path in args:
        validate_file(problems, path)
    for p in problems:
        print(p)
    if not problems:
        print(f"{len(args)} telemetry artifact(s) validate")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
