#!/usr/bin/env python3
"""Compare two cuttlesim-cov-v1 coverage databases; fail on regression.

The CI coverage gate: given a BASELINE database (committed, or produced
by the previous build) and a NEW database from the current build, report
every coverage point that the baseline reached and the new run did not.
A point is one of:

  - a statement (count > 0),
  - a branch outcome (taken > 0, or not_taken > 0, each separately),
  - a rule that ever committed,
  - a toggle direction (a register bit's 0->1 rise or 1->0 fall).

Exit status: 0 when NEW covers everything BASELINE covered (newly
covered points are reported as improvements, never as failures), 1 when
any covered point was lost, 2 on usage or input errors. ctest wires this
as the `coverage_gate` test (label: coverage), so a change that silently
stops exercising part of a design fails the suite.

The two databases must describe the same design and shape; comparing
unrelated designs is an input error, mirroring CoverageMap::merge.

Usage: coverage_diff.py BASELINE.json NEW.json
       coverage_diff.py --self-test
"""

import json
import sys
import tempfile


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        db = json.load(f)
    if not isinstance(db, dict) or db.get("schema") != "cuttlesim-cov-v1":
        raise ValueError(f"{path}: not a cuttlesim-cov-v1 database")
    return db


def covered_points(db):
    """The set of covered point names, spelled stably for diffing."""
    points = set()
    for node_id, count in db.get("statements", {}).items():
        if count > 0:
            points.add(f"statement node {node_id}")
    for node_id, outcome in db.get("branches", {}).items():
        if outcome[0] > 0:
            points.add(f"branch node {node_id} taken")
        if outcome[1] > 0:
            points.add(f"branch node {node_id} not-taken")
    for rule in db.get("rules", []):
        if rule.get("commits", 0) > 0:
            points.add(f"rule {rule['name']} committed")
    for reg in db.get("toggles", []):
        for direction in ("rise", "fall"):
            for bit, count in enumerate(reg.get(direction, [])):
                if count > 0:
                    points.add(f"toggle {reg['name']}[{bit}] {direction}")
    return points


def diff(baseline, new):
    """Return (lost, gained) covered-point sets, checking identity."""
    for key in ("design", "nodes", "points"):
        if baseline.get(key) != new.get(key):
            raise ValueError(
                f"databases disagree on '{key}': "
                f"{baseline.get(key)!r} vs {new.get(key)!r} — not "
                f"comparable")
    base_points = covered_points(baseline)
    new_points = covered_points(new)
    return sorted(base_points - new_points), sorted(new_points - base_points)


def run_diff(baseline_path, new_path):
    try:
        baseline = load(baseline_path)
        new = load(new_path)
        lost, gained = diff(baseline, new)
    except (OSError, ValueError, KeyError, IndexError, TypeError) as e:
        print(f"coverage_diff: {e}", file=sys.stderr)
        return 2
    for point in gained:
        print(f"+ newly covered: {point}")
    for point in lost:
        print(f"- REGRESSION: no longer covered: {point}")
    base_total = len(covered_points(baseline))
    print(f"coverage_diff: {baseline.get('design')}: "
          f"{base_total} baseline points, {len(gained)} gained, "
          f"{len(lost)} lost")
    return 1 if lost else 0


def self_test():
    """Exercise the gate on synthetic databases; exit 0 when it behaves."""
    base = {
        "schema": "cuttlesim-cov-v1",
        "design": "selftest",
        "nodes": 4,
        "cycles": 10,
        "engines": ["T5"],
        "points": {"statements": 2, "branches": 1, "toggle_bits": 2},
        "statements": {"0": 5, "2": 1},
        "branches": {"2": [1, 0]},
        "rules": [{"name": "r0", "commits": 5, "aborts": 5}],
        "toggles": [{"name": "x", "width": 2,
                     "rise": [1, 0], "fall": [1, 0]}],
    }
    # Same coverage, different counts: counts may drift, points may not.
    same = json.loads(json.dumps(base))
    same["statements"] = {"0": 99, "2": 3}
    same["branches"] = {"2": [7, 0]}
    # Lost the branch-taken outcome and the statement at node 2.
    worse = json.loads(json.dumps(base))
    worse["statements"] = {"0": 5}
    worse["branches"] = {"2": [0, 0]}
    # Other design: must be an input error, not a pass.
    other = json.loads(json.dumps(base))
    other["design"] = "other"

    def run(a, b):
        with tempfile.NamedTemporaryFile("w", suffix=".json") as fa, \
                tempfile.NamedTemporaryFile("w", suffix=".json") as fb:
            json.dump(a, fa)
            fa.flush()
            json.dump(b, fb)
            fb.flush()
            return run_diff(fa.name, fb.name)

    checks = [
        ("identical databases pass", run(base, base), 0),
        ("count drift without point loss passes", run(base, same), 0),
        ("lost points fail", run(base, worse), 1),
        ("gained points pass", run(worse, base), 0),
        ("mismatched designs are an input error", run(base, other), 2),
    ]
    failed = [name for name, got, want in checks if got != want]
    for name, got, want in checks:
        status = "ok" if got == want else f"FAIL (exit {got}, want {want})"
        print(f"self-test: {name}: {status}")
    return 1 if failed else 0


def main(argv):
    if len(argv) == 2 and argv[1] == "--self-test":
        return self_test()
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    return run_diff(argv[1], argv[2])


if __name__ == "__main__":
    sys.exit(main(sys.argv))
