// Case study 4: branch prediction exploration with coverage counts.
//
// Reproduces the paper's §4.2 workflow: instead of adding hardware
// performance counters, run the model with code coverage enabled and
// read the architectural statistics straight off the source lines —
// mispredictions are the execution count of the execute stage's
// `pc.wr0(nextPc)` line, and scoreboard stalls fall out of the decode
// rule's hazard guard counts. Compares the PC+4 baseline against the
// BTB+BHT variant on a branch-heavy workload.
//
//   $ ./examples/branch_exploration

#include <cstdio>

#include "designs/designs.hpp"
#include "designs/rv32.hpp"
#include "harness/coverage.hpp"
#include "interp/reference_model.hpp"
#include "riscv/programs.hpp"

using namespace koika;
using namespace koika::designs;

namespace {

/** Find a rule's first write node to a register (an AST "line"). */
const Action*
find_write(const Action* a, int reg)
{
    if (a == nullptr)
        return nullptr;
    if (a->kind == ActionKind::kWrite && a->reg == reg)
        return a;
    for (const Action* child : {a->a0, a->a1, a->a2})
        if (const Action* hit = find_write(child, reg))
            return hit;
    for (const Action* arg : a->args)
        if (const Action* hit = find_write(arg, reg))
            return hit;
    return nullptr;
}

struct Stats
{
    uint64_t cycles;
    uint64_t instret;
    uint64_t mispredicts;
    uint64_t decode_attempts;
    uint64_t decode_issues;
};

Stats
run(const std::string& design_name, uint32_t iterations)
{
    auto d = build_design(design_name);
    ReferenceModel model(*d);
    model.interpreter().enable_coverage();
    riscv::Program prog =
        riscv::build_program(riscv::branchy_source(iterations));
    Rv32System sys(*d, model, prog, 1);
    Stats s{};
    s.cycles = sys.run(10'000'000);
    s.instret = sys.instret(0);

    const auto& cov = model.interpreter().coverage();
    // Mispredictions: executions of execute's pc.wr0 (the redirect).
    const Action* redirect =
        find_write(d->rule(d->rule_index("execute")).body,
                   d->reg_index("pc"));
    s.mispredicts = harness::node_count(cov, redirect);
    // Decode issue rate: executions of the d2e enqueue vs rule entries.
    const Action* issue =
        find_write(d->rule(d->rule_index("decode")).body,
                   d->reg_index("d2e_valid"));
    s.decode_issues = harness::node_count(cov, issue);

    // Print the paper-style annotated snippet of the execute rule.
    std::printf("--- %s: execute rule, Gcov-style ---\n",
                design_name.c_str());
    std::string listing = harness::coverage_report_rule(
        *d, d->rule_index("execute"), cov);
    // Show only the redirect region to keep the output focused.
    size_t anchor = listing.find("if ((npc != e.ppc))");
    size_t from = listing.rfind('\n', listing.rfind('\n', anchor) - 1);
    size_t to = listing.find("}", anchor);
    to = listing.find('\n', to);
    std::printf("%s\n", listing.substr(from + 1, to - from).c_str());
    return s;
}

} // namespace

int
main()
{
    constexpr uint32_t kIters = 2000;
    std::printf("Case study 4: adding a branch predictor, evaluated "
                "with coverage alone.\nWorkload: branchy(%u)\n\n",
                kIters);
    Stats base = run("rv32i", kIters);
    Stats bp = run("rv32i-bp", kIters);

    std::printf("\n%-22s %12s %12s\n", "", "baseline", "btb+bht");
    std::printf("%-22s %12llu %12llu\n", "cycles",
                (unsigned long long)base.cycles,
                (unsigned long long)bp.cycles);
    std::printf("%-22s %12llu %12llu\n", "instructions",
                (unsigned long long)base.instret,
                (unsigned long long)bp.instret);
    std::printf("%-22s %12llu %12llu\n", "mispredictions",
                (unsigned long long)base.mispredicts,
                (unsigned long long)bp.mispredicts);
    std::printf("%-22s %12.3f %12.3f\n", "IPC",
                (double)base.instret / (double)base.cycles,
                (double)bp.instret / (double)bp.cycles);
    std::printf("\nThe misprediction count fell %.1fx without adding a "
                "single hardware\ncounter — it is just the execution "
                "count of the pc.wr0 line, exactly\nas the paper reads "
                "it off Gcov (2'071'903 -> 165'753 in their run).\n",
                (double)base.mispredicts /
                    (double)(bp.mispredicts ? bp.mispredicts : 1));
    return 0;
}
