// Case study 1: debugging a deadlock in the MSI coherence system.
//
// Scripts the paper's gdb session against the buggy 2-core MSI design:
// run until the system deadlocks, print the MSHRs and parent state with
// symbolic enum names (no custom pretty-printers), break on the failing
// rule (the parent's ConfirmDowngrades step), and use the reverse
// watchpoint to find where the downgrade request went — discovering that
// the child cache consumed it without ever acknowledging.
//
//   $ ./examples/msi_debugging

#include <cstdio>

#include "designs/msi.hpp"
#include "harness/debug.hpp"
#include "sim/tiers.hpp"

using namespace koika;
using namespace koika::designs;

int
main()
{
    std::printf("Case study 1: a 2-core MSI machine stops making "
                "progress.\n\n");
    auto d = build_msi({.bug_silent_drop = true});
    auto e = sim::make_engine(*d, sim::Tier::kT4MergedData);
    harness::Debugger dbg(*d, *e, 512);
    MsiProbe probe = msi_probe(*d);

    // 1. Run until the deadlock (ops counters stop moving).
    uint64_t last_ops = 0, stuck = 0;
    dbg.run_until(
        [&] {
            uint64_t ops = e->get_reg(probe.ops[0]).to_u64() +
                           e->get_reg(probe.ops[1]).to_u64();
            stuck = ops == last_ops ? stuck + 1 : 0;
            last_ops = ops;
            return stuck > 300;
        },
        50'000);
    std::printf("Deadlock after %llu completed operations. "
                "Inspecting state (gdb-style):\n\n",
                (unsigned long long)last_ops);

    // 2. Print the status registers; enum names are preserved.
    for (int c = 0; c < 2; ++c)
        std::printf("  (gdb) p l1_%d.mshr        $ = %s   (addr %s)\n",
                    c, dbg.reg_str("l1_" + std::to_string(c) + "_mshr")
                           .c_str(),
                    dbg.reg_str("l1_" + std::to_string(c) + "_mshr_addr")
                        .c_str());
    std::printf("  (gdb) p parent.state     $ = %s\n\n",
                dbg.reg_str("parent_state").c_str());

    // 3. Why is there no transition out of ConfirmDowngrades? Break on
    //    the rule's FAIL and look at what it is waiting for.
    uint64_t to_fail = dbg.break_on_abort("parent_confirm", 100);
    std::printf("  (gdb) break FAIL if rule == parent_confirm\n"
                "  -> hits after %llu cycle(s): the rule aborts waiting "
                "for a downgrade\n     response that never arrives.\n\n",
                (unsigned long long)to_fail);
    std::printf("  parent is waiting on addr %s from core %s "
                "(want M: %s)\n",
                dbg.reg_str("parent_addr").c_str(),
                dbg.reg_str("parent_core").c_str(),
                dbg.reg_str("parent_wantm").c_str());

    // 3b. Step halfway through a cycle, rule by rule (§3.2: mid-cycle
    //     snapshots), watching which rules commit and which fail.
    std::printf("\n  Stepping one cycle rule-by-rule (mid-cycle "
                "snapshots):\n");
    e->begin_step_cycle();
    for (int r : d->schedule_order()) {
        bool fired = e->step_rule(r);
        if (d->rule(r).name.rfind("parent", 0) == 0)
            std::printf("    %-16s %s   parent_state(mid) = %s\n",
                        d->rule(r).name.c_str(),
                        fired ? "commits" : "FAILS  ",
                        format_value(
                            d->reg(d->reg_index("parent_state")).type,
                            e->get_mid_reg(d->reg_index("parent_state")))
                            .c_str());
    }
    e->end_step_cycle();

    // 4. Reverse execution: when did the downgrade REQUEST channel last
    //    change? (A watchpoint run backwards, as with rr.)
    for (int c = 0; c < 2; ++c) {
        std::string chan = "l1_" + std::to_string(c) + "_p2c_dreq_valid";
        harness::LastChange lc = dbg.last_change(chan);
        if (lc.found())
            std::printf("  (rr) reverse-watch %s: changed %lu cycles "
                        "ago (now %s)\n",
                        chan.c_str(), (unsigned long)lc.ago,
                        dbg.reg_str(chan).c_str());
        else
            std::printf("  (rr) reverse-watch %s: %s (now %s)\n",
                        chan.c_str(),
                        lc.status == harness::LastChange::kNeverChanged
                            ? "never changed"
                            : "history truncated",
                        dbg.reg_str(chan).c_str());
    }
    std::printf("\nThe downgrade request was *consumed* (valid fell to "
                "0) but the response\nchannels stayed empty:\n");
    for (int c = 0; c < 2; ++c)
        std::printf("  c2p_dresp_valid[core %d] = %s\n", c,
                    dbg.reg_str("l1_" + std::to_string(c) +
                                "_c2p_dresp_valid")
                        .c_str());

    std::printf(
        "\nRoot cause found: the cache's downgrade handler consumed a "
        "request for a\nline it had already evicted without sending the "
        "'not present' ack — the\nintermediate state wrongly says "
        "downgrading is unfinished, so the parent\nstays in "
        "ConfirmDowngrades and the requester in WaitFillResp forever.\n"
        "(Build the design with bug_silent_drop = false for the fix; "
        "tests/test_msi.cpp\nverifies both versions.)\n");
    return 0;
}
