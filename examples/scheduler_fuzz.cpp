// Case study 2: functional verification with scheduler randomization.
//
// A good rule-based design uses its scheduler for performance, not for
// functional correctness. The paper's methodology: because the model is
// just C++, write a cycle() that calls the rules in random order and
// check the design still works. We fuzz the collatz state machine, the
// MSI protocol (final-state comparison against the canonical schedule is
// not expected there — coherence is the property), and the rv32i core
// running a real program whose tohost output must be schedule-invariant.
//
// Seeds are fixed, so a run is reproducible; ctest runs this on every
// build (labels: tier1, fuzz). Trials are independent, each seeded by
// harness::derive_seed(base, trial), and sharded across worker threads
// (src/harness/parallel.hpp) — the verdict is identical at any job
// count. Optional arguments scale the trial counts for deep runs and
// set the worker count:
//
//   $ ./examples/scheduler_fuzz        # per-build config, 1 worker/core
//   $ ./examples/scheduler_fuzz 10    # 10x the trials (ctest -L fuzz)
//   $ ./examples/scheduler_fuzz 10 4  # same, on exactly 4 workers
//
// With KOIKA_FUZZ_COVERAGE=PREFIX set, every fuzzed design also
// accumulates a cuttlesim-cov-v1 design-coverage database over all its
// trials, written to PREFIX<design>.cov.json. Per-trial maps are folded
// in trial order after the workers join, so — like the verdict — the
// database is byte-identical at any worker count and can be merged with
// databases from other producers via `cuttlec --coverage-merge`.
//
// With KOIKA_PROF=FILE set, the host span profiler is armed and a
// cuttlesim-prof-v1 report (docs/OBSERVABILITY.md) is written to FILE
// at exit: per-trial setup vs. run attribution plus worker-pool
// utilization, the data that tells a slow fuzz run apart from an
// underfed one.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <random>

#include "base/io.hpp"
#include "designs/designs.hpp"
#include "designs/msi.hpp"
#include "designs/rv32.hpp"
#include "harness/memory.hpp"
#include "harness/parallel.hpp"
#include "obs/coverage.hpp"
#include "obs/prof.hpp"
#include "riscv/goldensim.hpp"
#include "riscv/programs.hpp"
#include "sim/tiers.hpp"

using namespace koika;
using namespace koika::designs;

namespace {

std::vector<int>
identity_order(const Design& d)
{
    std::vector<int> order;
    for (size_t i = 0; i < d.num_rules(); ++i)
        order.push_back((int)i);
    return order;
}

int fuzz_jobs = 1;

/** $KOIKA_FUZZ_COVERAGE, or empty when coverage is off. */
std::string fuzz_cov_prefix;

/** Fold per-trial maps in trial order and write the database. */
void
save_fuzz_coverage(const Design& d, const std::string& name,
                   const std::vector<obs::CoverageMap>& trials)
{
    obs::CoverageMap merged = obs::CoverageMap::for_design(d);
    for (const obs::CoverageMap& m : trials)
        merged.merge(m);
    std::string path = fuzz_cov_prefix + name + ".cov.json";
    merged.save(path);
    std::printf("  %-8s: coverage database written to %s\n",
                name.c_str(), path.c_str());
}

/** Fuzz a closed design: final state must match the canonical run. */
bool
fuzz_closed(const std::string& name, int cycles, int trials)
{
    auto d = build_design(name);
    auto canonical = sim::make_engine(*d, sim::Tier::kT4MergedData);
    for (int c = 0; c < cycles; ++c)
        canonical->cycle();
    // Snapshot the canonical final state so the sharded trials only
    // touch immutable data.
    std::vector<Bits> final_state;
    for (size_t r = 0; r < d->num_registers(); ++r)
        final_state.push_back(canonical->get_reg((int)r));

    std::vector<char> agreed(trials, 0);
    std::vector<obs::CoverageMap> cov;
    if (!fuzz_cov_prefix.empty())
        cov.resize((size_t)trials);
    harness::parallel_for((uint64_t)trials, fuzz_jobs, [&](uint64_t t) {
        obs::ProfScope setup_span("trial/setup");
        std::mt19937_64 rng(harness::derive_seed(42, t));
        auto e = sim::make_engine(*d, sim::Tier::kT4MergedData);
        std::unique_ptr<obs::CoverageCollector> collector;
        if (!cov.empty())
            collector =
                std::make_unique<obs::CoverageCollector>(*d, *e);
        std::vector<int> order = identity_order(*d);
        setup_span.close();
        obs::ProfScope run_span("trial/run");
        for (int c = 0; c < cycles; ++c) {
            std::shuffle(order.begin(), order.end(), rng);
            e->cycle_with_order(order);
            if (collector != nullptr)
                collector->sample();
        }
        bool same = true;
        for (size_t r = 0; r < d->num_registers(); ++r)
            same &= e->get_reg((int)r) == final_state[r];
        agreed[t] = same;
        if (collector != nullptr)
            cov[t] = collector->take(
                sim::tier_name(sim::Tier::kT4MergedData));
    });
    if (!cov.empty())
        save_fuzz_coverage(*d, name, cov);
    int agreeing = 0;
    for (char a : agreed)
        agreeing += a;
    std::printf("  %-8s: %d/%d random schedules reach the canonical "
                "final state\n",
                name.c_str(), agreeing, trials);
    return agreeing == trials;
}

/** Fuzz the rv32i core: tohost output must be schedule-invariant. */
bool
fuzz_rv32(int trials)
{
    riscv::Program prog =
        riscv::build_program(riscv::primes_source(100));
    riscv::GoldenSim golden;
    golden.load(prog);
    golden.run(10'000'000);

    auto d = build_design("rv32i");
    Rv32CorePorts ports = rv32_ports(*d, 0, 1);
    std::vector<char> matched(trials, 0);
    std::vector<obs::CoverageMap> cov;
    if (!fuzz_cov_prefix.empty())
        cov.resize((size_t)trials);
    harness::parallel_for((uint64_t)trials, fuzz_jobs, [&](uint64_t t) {
        obs::ProfScope setup_span("trial/setup");
        std::mt19937_64 rng(harness::derive_seed(7, t));
        auto e = sim::make_engine(*d, sim::Tier::kT4MergedData);
        std::unique_ptr<obs::CoverageCollector> collector;
        if (!cov.empty())
            collector =
                std::make_unique<obs::CoverageCollector>(*d, *e);
        harness::MemoryDevice mem;
        mem.load_words(prog.words, prog.base);
        harness::MemPort imem(mem, ports.imem), dmem(mem, ports.dmem);
        std::vector<int> order = identity_order(*d);
        setup_span.close();
        obs::ProfScope run_span("trial/run");
        for (int c = 0; c < 500'000; ++c) {
            std::shuffle(order.begin(), order.end(), rng);
            e->cycle_with_order(order);
            imem.tick(*e);
            dmem.tick(*e);
            if (collector != nullptr)
                collector->sample();
            if (!e->get_reg(ports.halted).is_zero() &&
                e->get_reg(ports.d2e_valid).is_zero() &&
                e->get_reg(ports.e2w_valid).is_zero())
                break;
        }
        matched[t] = mem.tohost() == golden.tohost();
        if (collector != nullptr)
            cov[t] = collector->take(
                sim::tier_name(sim::Tier::kT4MergedData));
    });
    if (!cov.empty())
        save_fuzz_coverage(*d, "rv32i", cov);
    int good = 0;
    for (char m : matched)
        good += m;
    std::printf("  rv32i   : %d/%d random per-cycle schedules produce "
                "the golden primes(100)\n            output (%u primes)\n",
                good, trials, golden.tohost()[0]);
    return good == trials;
}

} // namespace

int
main(int argc, char** argv)
{
    int scale = argc > 1 ? std::atoi(argv[1]) : 1;
    if (scale < 1)
        scale = 1;
    fuzz_jobs =
        harness::resolve_jobs(argc > 2 ? std::atoi(argv[2]) : 0);
    if (const char* prefix = std::getenv("KOIKA_FUZZ_COVERAGE"))
        fuzz_cov_prefix = prefix;
    std::string prof_file;
    if (const char* pf = std::getenv("KOIKA_PROF"))
        prof_file = pf;
    if (!prof_file.empty()) {
        obs::Profiler::instance().enable();
        obs::Profiler::instance().set_thread_name("main");
    }
    std::printf("Case study 2: scheduler randomization.\n"
                "Rules run in a fresh random order every cycle; designs "
                "must not depend on\nthe scheduler for correctness.\n"
                "(%d trial workers; the verdict is jobs-independent.)\n\n",
                fuzz_jobs);
    bool ok = true;
    ok &= fuzz_closed("collatz", 500, 20 * scale);
    ok &= fuzz_closed("fir", 300, 10 * scale);
    ok &= fuzz_rv32(5 * scale);
    if (!prof_file.empty()) {
        write_file_atomic(
            prof_file,
            obs::Profiler::instance().report().to_json().dump(2) + "\n");
        std::fprintf(stderr, "profile report written to %s\n",
                     prof_file.c_str());
    }
    std::printf("\n%s\n",
                ok ? "All randomized schedules preserved functional "
                     "behaviour."
                   : "DIVERGENCE FOUND: the design depends on its "
                     "scheduler!");
    return ok ? 0 : 1;
}
