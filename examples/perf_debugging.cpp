// Case study 3: performance debugging the NOP pipeline stutter — now
// through the observability layer.
//
// The paper's scenario: retiring 100 NOPs takes ~2x the cycles it
// should, because the scoreboard tracks x0 like a real register, so
// every NOP (ADDI x0, x0, 0) appears to depend on the previous one.
// Instead of stepping cycle by cycle, we let the abort-reason
// attribution point the finger: the per-rule stats table shows decode
// aborting on its *guard* (the hazard check) half the time, while the
// fixed core's decode commits nearly every cycle. A Perfetto rule trace
// of the first cycles makes the stutter visible as gaps in decode's
// swim lane.
//
//   $ ./examples/perf_debugging
//   $ # then open perf_debugging.trace.json in https://ui.perfetto.dev

#include <cstdio>
#include <fstream>

#include "designs/rv32.hpp"
#include "obs/stats.hpp"
#include "obs/trace.hpp"
#include "riscv/programs.hpp"
#include "sim/tiers.hpp"

using namespace koika;
using namespace koika::designs;

namespace {

/** Run 100 NOPs to completion; return the collected stats. */
obs::SimStats
run_nops(const Design& d, const char* label, obs::TraceWriter* trace)
{
    auto e = sim::make_engine(d, sim::Tier::kT5StaticAnalysis);
    riscv::Program prog = riscv::build_program(riscv::nops_source(100));
    Rv32System sys(d, *e, prog, 1);
    if (trace == nullptr) {
        sys.run(100'000);
    } else {
        // Trace the steady-state stutter (skip pipeline warm-up).
        sys.run(10);
        for (int c = 0; c < 40 && !sys.halted(); ++c) {
            sys.run(1);
            trace->sample(*e);
        }
        sys.run(100'000);
    }
    obs::SimStats stats = obs::collect_stats(*e);
    stats.label = label;
    stats.design = d.name();
    stats.engine = "T5";
    stats.extra["instret"] = (double)sys.instret(0);
    return stats;
}

void
print_decode_row(const obs::SimStats& s)
{
    for (const obs::RuleStats& r : s.rules)
        if (r.name == "decode")
            std::printf("  %-10s decode: %llu commits, %llu aborts "
                        "(guard %llu, read %llu, write %llu) over %llu "
                        "cycles\n",
                        s.label.c_str(),
                        (unsigned long long)r.commits,
                        (unsigned long long)r.aborts,
                        (unsigned long long)r.guard_aborts,
                        (unsigned long long)r.read_conflict_aborts,
                        (unsigned long long)r.write_conflict_aborts,
                        (unsigned long long)s.cycles);
}

} // namespace

int
main()
{
    std::printf("Case study 3: why does a 100-NOP program take ~2x the "
                "cycles?\n\n");

    auto good = build_rv32({});
    auto bad = build_rv32({.x0_bug = true});

    std::ofstream trace_out("perf_debugging.trace.json");
    auto bad_engine = sim::make_engine(*bad, sim::Tier::kT5StaticAnalysis);
    std::vector<std::string> rule_names;
    for (size_t r = 0; r < bad_engine->num_rules(); ++r)
        rule_names.push_back(bad_engine->rule_name((int)r));
    obs::TraceWriter trace(trace_out, rule_names, "rv32i-x0bug");

    obs::SimStats good_stats = run_nops(*good, "fixed", nullptr);
    obs::SimStats bad_stats = run_nops(*bad, "suspect", &trace);
    trace.finish();

    std::printf("Full per-rule statistics of the suspect core:\n\n%s\n",
                bad_stats.to_text().c_str());

    std::printf("The suspect core takes %.2fx the cycles. The abort\n"
                "attribution already names the culprit:\n\n",
                (double)bad_stats.cycles / (double)good_stats.cycles);
    print_decode_row(bad_stats);
    print_decode_row(good_stats);

    std::printf(
        "\nEvery extra decode abort is a *guard* abort — the hazard\n"
        "check — not a port conflict. The hazard guard consults the\n"
        "scoreboard for the NOP's source and destination... which are\n"
        "x0. Each NOP marks sb[x0] busy, so consecutive NOPs appear\n"
        "dependent: the designer forgot that x0 is non-writable\n"
        "(a NOP is ADDI x0, x0, 0). The fixed core skips x0 in the\n"
        "scoreboard, decode's guard aborts vanish, and it retires ~1\n"
        "NOP per cycle.\n\n"
        "perf_debugging.trace.json holds a Perfetto trace of the\n"
        "stuttering pipeline: open it in https://ui.perfetto.dev and\n"
        "decode's swim lane alternates commit slices with guard-abort\n"
        "instants.\n");
    return 0;
}
