// Case study 3: performance debugging the NOP pipeline stutter.
//
// The paper's scenario: retiring 100 NOPs takes 203 cycles instead of
// ~100, because the scoreboard tracks x0 like a real register, so every
// NOP (ADDI x0, x0, 0) appears to depend on the previous one. We run the
// buggy and fixed cores side by side, then "step through" the buggy
// pipeline with the scripted debugger to find the stall, exactly
// following the case study's reasoning.
//
//   $ ./examples/perf_debugging

#include <cstdio>

#include "designs/rv32.hpp"
#include "harness/debug.hpp"
#include "riscv/programs.hpp"
#include "sim/tiers.hpp"

using namespace koika;
using namespace koika::designs;

namespace {

uint64_t
run_nops(const Design& d, sim::Model& m)
{
    riscv::Program prog = riscv::build_program(riscv::nops_source(100));
    Rv32System sys(d, m, prog, 1);
    uint64_t cycles = sys.run(100'000);
    std::printf("  %-14s: %3llu cycles for 100 NOPs (instret %llu)\n",
                d.name().c_str(), (unsigned long long)cycles,
                (unsigned long long)sys.instret(0));
    return cycles;
}

} // namespace

int
main()
{
    std::printf("Case study 3: why does a 100-NOP program take ~2x the "
                "cycles?\n\n");

    auto good = build_rv32({});
    auto bad = build_rv32({.x0_bug = true});
    auto good_e = sim::make_engine(*good, sim::Tier::kT5StaticAnalysis);
    auto bad_e = sim::make_engine(*bad, sim::Tier::kT5StaticAnalysis);
    uint64_t good_cycles = run_nops(*good, *good_e);
    uint64_t bad_cycles = run_nops(*bad, *bad_e);

    std::printf("\nThe suspect core takes %.2fx the cycles. "
                "Investigating with the debugger:\n\n",
                (double)bad_cycles / (double)good_cycles);

    // Fresh buggy system; follow one NOP through the pipeline.
    auto probe = build_rv32({.x0_bug = true});
    auto e = sim::make_engine(*probe, sim::Tier::kT4MergedData);
    harness::Debugger dbg(*probe, *e);
    riscv::Program prog = riscv::build_program(riscv::nops_source(100));
    Rv32System sys(*probe, *e, prog, 1);

    // Warm the pipeline, then watch decode for a few cycles.
    for (int i = 0; i < 6; ++i) {
        sys.run(1);
        dbg.step(); // record; (the extra step cycles are harmless here)
    }
    std::printf("Stepping rule by rule (decode commits vs aborts):\n");
    const auto& commits = e->rule_commit_counts();
    const auto& aborts = e->rule_abort_counts();
    int decode = probe->rule_index("decode");
    for (int i = 0; i < 8; ++i) {
        uint64_t c0 = commits[(size_t)decode], a0 = aborts[(size_t)decode];
        sys.run(1);
        std::printf("  cycle +%d: decode %s   sb[x0] = %s\n", i,
                    commits[(size_t)decode] > c0
                        ? "commits"
                        : (aborts[(size_t)decode] > a0 ? "ABORTS "
                                                       : "idle   "),
                    dbg.reg_str("sb0").c_str());
    }

    std::printf(
        "\nDecode aborts every other cycle. Stepping into the decode\n"
        "rule shows the hazard guard checking the scoreboard for the\n"
        "NOP's source and destination... which are x0. The previous NOP\n"
        "marked sb[x0] busy: an unintended dependency between NOPs.\n"
        "In RISC-V a NOP is ADDI x0, x0, 0 and x0 is non-writable; the\n"
        "designer forgot the special case. The fixed core (above) skips\n"
        "x0 in the scoreboard and retires ~1 NOP per cycle.\n");
    return 0;
}
