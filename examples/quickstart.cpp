// Quickstart: the paper's §2.1 two-state machine, end to end.
//
// Builds a Kôika design through the C++ EDSL, runs it on the reference
// interpreter and the optimized Cuttlesim engine, checks cycle-accuracy,
// then drives the two decoupled backends: the Cuttlesim C++ model
// (simulation pipeline) and Verilog (synthesis pipeline).
//
//   $ ./examples/quickstart

#include <cstdio>

#include "codegen/cpp_emit.hpp"
#include "interp/reference.hpp"
#include "koika/builder.hpp"
#include "koika/print.hpp"
#include "koika/typecheck.hpp"
#include "rtl/lower.hpp"
#include "rtl/verilog.hpp"
#include "sim/tiers.hpp"

using namespace koika;

int
main()
{
    // -- 1. Describe the hardware: registers + atomic rules ------------
    Design d("stm");
    Builder b(d);
    auto state_t = make_enum("state", {"A", "B"});
    int st = d.add_register("st", state_t, Bits::of(1, 0));
    int x = b.reg("x", 32, 1);
    int output = b.reg("output", 32, 0);

    FunctionDef* fA = b.fn("fA", {{"v", bits_type(32)}}, bits_type(32),
                           b.add(b.var("v"), b.k(32, 7)));
    FunctionDef* fB = b.fn("fB", {{"v", bits_type(32)}}, bits_type(32),
                           b.xor_(b.var("v"), b.k(32, 0x55AA)));

    // rule rlA = if (st.rd0 != A) abort; st.wr0(B);
    //            let new_x := fA(x.rd0()) in x.wr0(new_x); output...
    d.add_rule("rlA",
               b.seq({b.guard(b.eq(b.read0(st), b.enum_k(state_t, "A"))),
                      b.write0(st, b.enum_k(state_t, "B")),
                      b.let("new_x", b.call(fA, {b.read0(x)}),
                            b.seq({b.write0(x, b.var("new_x")),
                                   b.write0(output, b.var("new_x"))}))}));
    d.add_rule("rlB",
               b.seq({b.guard(b.eq(b.read0(st), b.enum_k(state_t, "B"))),
                      b.write0(st, b.enum_k(state_t, "A")),
                      b.let("new_x", b.call(fB, {b.read0(x)}),
                            b.seq({b.write0(x, b.var("new_x")),
                                   b.write0(output, b.var("new_x"))}))}));
    d.schedule("rlA");
    d.schedule("rlB");
    typecheck(d);

    std::printf("=== The Koika design ===\n%s\n",
                print_design(d).c_str());

    // -- 2. Simulate: specification semantics vs optimized engine -------
    ReferenceSim spec(d);
    auto fast = sim::make_engine(d, sim::Tier::kT5StaticAnalysis);
    std::printf("=== 8 cycles, reference vs Cuttlesim engine ===\n");
    for (int c = 0; c < 8; ++c) {
        spec.cycle();
        fast->cycle();
        bool same = true;
        for (size_t r = 0; r < d.num_registers(); ++r)
            same &= spec.reg((int)r) == fast->get_reg((int)r);
        std::printf("cycle %d: st=%-8s x=%-12s output=%-12s  %s\n", c,
                    format_value(state_t, fast->get_reg(st)).c_str(),
                    fast->get_reg(x).str().c_str(),
                    fast->get_reg(output).str().c_str(),
                    same ? "(cycle-accurate)" : "(MISMATCH!)");
    }

    // -- 3. The simulation backend: a readable C++ model ----------------
    std::string model = codegen::emit_model(d);
    std::printf("\n=== Cuttlesim C++ model (excerpt) ===\n");
    size_t pos = model.find("// rule rlA");
    std::printf("%s...\n",
                model.substr(pos, model.find("// rule rlB") - pos)
                    .c_str());

    // -- 4. The synthesis backend: Verilog -------------------------------
    std::string verilog =
        rtl::emit_verilog(rtl::lower(d), d.name());
    std::printf("=== Verilog (first lines) ===\n%s...\n",
                verilog.substr(0, verilog.find("w9")).c_str());

    std::printf("\nDone. See DESIGN.md for the full map of the "
                "toolchain.\n");
    return 0;
}
